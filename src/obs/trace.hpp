// The error-propagation flight recorder.
//
// The paper's principles say where an error *should* travel: to the program
// that manages its scope (P3), explicitly (P1), with escaping errors
// converted back to explicit ones a level up (P2), through concise finite
// interfaces (P4). DESIGN.md argues the mechanisms enforce this; nothing in
// the seed *observed* an error's actual journey through
// schedd -> shadow -> starter -> JVM at runtime. This module records that
// journey: every error lifecycle transition (raised, converted
// explicit<->escaping, escalated, routed, consumed, masked, dropped,
// delivered, or observed only implicitly) becomes a span in a bounded
// ring-buffer journal keyed by simulated time, job id, and scope.
//
// Components hold a TraceSink — the same idiom as esg::Logger: a cheap
// handle bound to a component name whose emit methods are a single inline
// branch when tracing is disabled, so the hot paths pay (nearly) nothing
// unless a flight is being recorded.
//
// Layering note: obs sits beside core (core/router and core/escalate emit
// through it, and obs renders core's kinds and scopes), so the two static
// libraries reference each other. CMake supports this cycle explicitly; see
// src/obs/CMakeLists.txt.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/flatmap.hpp"

#include "common/simtime.hpp"
#include "core/error.hpp"

namespace esg::obs {

/// The paper's §3.1 taxonomy of error communication, as a span attribute:
/// which form the error had when the event was recorded.
enum class ErrorForm {
  kExplicit,  ///< an ordinary result in the routine's range
  kEscaping,  ///< a change of control flow (exception / broken connection)
  kImplicit,  ///< no communication at all: silence, wrong data, collapse
};

std::string_view form_name(ErrorForm form);

/// What happened to the error at this point of its journey.
enum class TraceEventType {
  kRaised,     ///< first discovered and represented as an Error value
  kConverted,  ///< changed form (explicit<->escaping, or collapsed)
  kEscalated,  ///< scope widened (by a layer, or by time, §5)
  kRouted,     ///< handed to the manager of a scope (Principle 3 delivery)
  kConsumed,   ///< a scope manager accepted it; the condition ends here
  kMasked,     ///< hidden by fault tolerance (retry, replica, reschedule)
  kDropped,    ///< discarded without a consumer — a hole in the structure
  kDelivered,  ///< crossed the final boundary to the user
  kImplicit,   ///< an implicit error was observed (crash/silence/corruption)
};

inline constexpr std::size_t kNumTraceEventTypes = 9;

std::string_view event_type_name(TraceEventType type);

/// Parse names produced by event_type_name() / form_name(). Returns
/// nullopt on unknown input — journal files cross a trust boundary.
std::optional<TraceEventType> parse_event_type(std::string_view name);
std::optional<ErrorForm> parse_form(std::string_view name);

/// One span in an error's causal journey.
struct TraceEvent {
  std::uint64_t id = 0;      ///< unique span id (assigned by the recorder)
  std::uint64_t parent = 0;  ///< causal predecessor span; 0 = chain root
  SimTime when{};            ///< simulated time of the event
  TraceEventType type = TraceEventType::kRaised;
  ErrorForm form = ErrorForm::kExplicit;
  ErrorKind kind = ErrorKind::kUnknown;
  ErrorScope scope = ErrorScope::kProcess;
  std::uint64_t job = 0;  ///< owning job id; 0 = not job-associated
  std::string component;  ///< who recorded it ("schedd@submit0", ...)
  std::string detail;     ///< free-form context (message, handler, ...)

  /// One-line rendering for dumps and logs.
  [[nodiscard]] std::string str() const;
};

/// Bounded ring-buffer journal of TraceEvents, plus per-type counters that
/// survive ring eviction. Instantiable: each simulation context owns its
/// own recorder (like LogSink and PrincipleAudit), so concurrent
/// simulations produce fully independent journals.
class FlightRecorder {
 public:
  FlightRecorder() = default;

  /// Compatibility shim: the process-wide recorder used by sinks that were
  /// never bound to a context. Do not introduce new callers (esg-lint's
  /// lint/global-singleton rule rejects them).
  static FlightRecorder& global();

  /// The hot-path guard: one predictable branch in TraceSink's emit
  /// methods when tracing is off. Per-recorder, so one simulation can
  /// record a flight while its neighbours stay dark.
  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Ring capacity; shrinking drops the oldest events. Must be >= 1.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Simulated-time source for events recorded without an explicit time
  /// (Pool installs the engine clock, like LogSink).
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }
  void clear_clock() { clock_ = nullptr; }

  /// Append an event. Assigns the span id; stamps `when` from the clock if
  /// it is zero; if `parent` is 0, links the event to the most recent event
  /// of the same job (or, for job-less events, of the same component) —
  /// in a deterministic single-threaded simulation that reconstructs the
  /// causal chain faithfully. Raised events always start a fresh chain.
  /// Returns the assigned id.
  std::uint64_t record(TraceEvent event);

  /// Streaming tap: called with every finalized event (id/parent/when
  /// assigned) before it enters the ring. A tap therefore sees the
  /// *complete* stream even when the ring later wraps — obs::ScopeAggregator
  /// attaches here for live dashboards. Costs nothing while tracing is
  /// disabled (record() is never reached).
  void set_tap(std::function<void(const TraceEvent&)> tap) {
    tap_ = std::move(tap);
  }
  void clear_tap() { tap_ = nullptr; }

  /// Ring-wrap accounting: spans overwritten by the ring (or shed by a
  /// capacity shrink) are counted per scope instead of silently vanishing,
  /// so post-hoc consumers of events() can tell a truncated view from a
  /// complete one. Lifetime counters; clear() resets them.
  [[nodiscard]] std::uint64_t dropped_spans() const { return dropped_total_; }
  [[nodiscard]] std::uint64_t dropped_spans(ErrorScope scope) const {
    return dropped_[static_cast<std::size_t>(scope)];
  }
  /// Only the scopes with nonzero losses, for compact surfacing.
  [[nodiscard]] std::map<ErrorScope, std::uint64_t> dropped_by_scope() const;

  /// All retained events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events() const;
  /// The most recent `n` events, oldest first — the flight-recorder dump.
  [[nodiscard]] std::vector<TraceEvent> last(std::size_t n) const;

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  /// Total events ever recorded, including ones the ring has dropped.
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  /// Events of a given type ever recorded (survives ring eviction).
  [[nodiscard]] std::uint64_t count(TraceEventType type) const;

  /// Find a retained event by span id; nullptr if evicted or unknown.
  [[nodiscard]] const TraceEvent* find(std::uint64_t id) const;
  /// The causal chain root..id (walking parent links through retained
  /// events; an evicted ancestor truncates the walk).
  [[nodiscard]] std::vector<TraceEvent> chain(std::uint64_t id) const;

  /// Chronic-failure hook: the schedd marks the moment its avoidance logic
  /// detects a chronically failing machine; the registered handler (demo,
  /// operators) typically renders last(n) — "the last N events before the
  /// failure". Marks are recorded even with no handler installed.
  void set_on_chronic(std::function<void(const std::string& reason)> fn) {
    on_chronic_ = std::move(fn);
  }
  void chronic_failure(const std::string& reason);
  [[nodiscard]] const std::vector<std::pair<SimTime, std::string>>&
  chronic_marks() const {
    return chronic_marks_;
  }

  /// Drop all events, marks, counters (including dropped-span accounting)
  /// and causal state. Keeps the enabled flag, capacity, clock, tap, and
  /// chronic handler.
  void clear();

 private:
  bool enabled_ = false;

  std::vector<TraceEvent> ring_;  ///< circular once size() == capacity_
  std::size_t head_ = 0;          ///< next slot to overwrite when full
  std::size_t capacity_ = 8192;
  std::uint64_t next_id_ = 1;
  std::uint64_t total_ = 0;
  std::uint64_t counts_[kNumTraceEventTypes] = {};
  std::uint64_t dropped_[kNumErrorScopes] = {};
  std::uint64_t dropped_total_ = 0;
  FlatMap<std::uint64_t, std::uint64_t> last_by_job_;
  FlatMap<std::string, std::uint64_t> last_by_component_;
  std::function<SimTime()> clock_;
  std::function<void(const TraceEvent&)> tap_;
  std::function<void(const std::string&)> on_chronic_;
  std::vector<std::pair<SimTime, std::string>> chronic_marks_;

  void count_dropped(const TraceEvent& evicted);
};

/// A cheap component-bound handle for emitting trace events — the tracing
/// twin of esg::Logger. Copyable; all methods are no-ops (one inline
/// branch) while the recorder is disabled, and every method returns the
/// span id it recorded (0 when disabled) so callers may thread explicit
/// causal parents when the default per-job linking is not enough.
///
/// A sink bound to a recorder (the normal case inside a simulation: bound
/// to the context's recorder) emits there; an unbound sink falls back to
/// the process-wide shim recorder.
class TraceSink {
 public:
  TraceSink() = default;
  explicit TraceSink(std::string component)
      : component_(std::move(component)) {}
  TraceSink(std::string component, FlightRecorder* recorder)
      : component_(std::move(component)), recorder_(recorder) {}

  [[nodiscard]] const std::string& component() const { return component_; }
  [[nodiscard]] FlightRecorder& recorder() const {
    // Compat fallback for unbound sinks.  esg-lint: allow(lint/global-singleton)
    return recorder_ != nullptr ? *recorder_ : FlightRecorder::global();
  }
  [[nodiscard]] bool enabled() const { return recorder().enabled(); }

  /// An error was first discovered here as an explicit Error value.
  std::uint64_t raised(const Error& e, std::uint64_t job = 0,
                       std::string detail = {},
                       std::uint64_t parent = 0) const {
    if (!enabled()) return 0;
    return emit(TraceEventType::kRaised, ErrorForm::kExplicit, e.kind(),
                e.scope(), job, std::move(detail), parent, &e);
  }

  /// An explicit (or potential implicit) error became an escaping one:
  /// a thrown Error, an aborted connection, a unique exit code (P2 raise).
  std::uint64_t converted_to_escaping(const Error& e, std::uint64_t job = 0,
                                      std::string detail = {},
                                      std::uint64_t parent = 0) const {
    if (!enabled()) return 0;
    return emit(TraceEventType::kConverted, ErrorForm::kEscaping, e.kind(),
                e.scope(), job, std::move(detail), parent, &e);
  }

  /// An escaping error was caught one level up and became explicit again
  /// (the second half of Principle 2).
  std::uint64_t converted_to_explicit(const Error& e, std::uint64_t job = 0,
                                      std::string detail = {},
                                      std::uint64_t parent = 0) const {
    if (!enabled()) return 0;
    return emit(TraceEventType::kConverted, ErrorForm::kExplicit, e.kind(),
                e.scope(), job, std::move(detail), parent, &e);
  }

  /// The error's scope was widened — by a layer reconsidering it, or by
  /// persistence (§5). `from` is the scope before widening.
  std::uint64_t escalated(const Error& e, ErrorScope from,
                          std::uint64_t job = 0, std::string detail = {},
                          std::uint64_t parent = 0) const {
    if (!enabled()) return 0;
    std::string d = std::string(scope_name(from)) + " -> " +
                    std::string(scope_name(e.scope()));
    if (!detail.empty()) d += ": " + detail;
    return emit(TraceEventType::kEscalated, ErrorForm::kExplicit, e.kind(),
                e.scope(), job, std::move(d), parent, &e);
  }

  /// The error was handed to `handler`, the manager of its scope (P3).
  std::uint64_t routed(const Error& e, const std::string& handler,
                       std::uint64_t job = 0, std::uint64_t parent = 0) const {
    if (!enabled()) return 0;
    return emit(TraceEventType::kRouted, ErrorForm::kExplicit, e.kind(),
                e.scope(), job, "to " + handler, parent, &e);
  }

  /// A scope manager consumed the error: the condition is resolved here.
  std::uint64_t consumed(const Error& e, std::uint64_t job = 0,
                         std::string detail = {},
                         std::uint64_t parent = 0) const {
    if (!enabled()) return 0;
    return emit(TraceEventType::kConsumed, ErrorForm::kExplicit, e.kind(),
                e.scope(), job, std::move(detail), parent, &e);
  }

  /// The error was hidden by a fault-tolerance technique (retry,
  /// reschedule, replica vote) — deliberately invisible to the user.
  std::uint64_t masked(const Error& e, std::uint64_t job = 0,
                       std::string detail = {},
                       std::uint64_t parent = 0) const {
    if (!enabled()) return 0;
    return emit(TraceEventType::kMasked, ErrorForm::kExplicit, e.kind(),
                e.scope(), job, std::move(detail), parent, &e);
  }

  /// The error was discarded with no consumer — a P3 hole.
  std::uint64_t dropped(const Error& e, std::uint64_t job = 0,
                        std::string detail = {},
                        std::uint64_t parent = 0) const {
    if (!enabled()) return 0;
    return emit(TraceEventType::kDropped, ErrorForm::kExplicit, e.kind(),
                e.scope(), job, std::move(detail), parent, &e);
  }

  /// The outcome crossed the final boundary to the user.
  std::uint64_t delivered(const Error& e, std::uint64_t job = 0,
                          std::string detail = {},
                          std::uint64_t parent = 0) const {
    if (!enabled()) return 0;
    return emit(TraceEventType::kDelivered, ErrorForm::kExplicit, e.kind(),
                e.scope(), job, std::move(detail), parent, &e);
  }

  /// An implicit error was observed: a crash, silence, corrupt data, or a
  /// deliberate collapse of information (the Figure 4 exit code). There may
  /// be no Error value — only the absence of a correct result.
  std::uint64_t implicit(ErrorKind kind, ErrorScope scope,
                         std::uint64_t job = 0, std::string detail = {},
                         std::uint64_t parent = 0) const {
    if (!enabled()) return 0;
    return emit(TraceEventType::kImplicit, ErrorForm::kImplicit, kind, scope,
                job, std::move(detail), parent, nullptr);
  }

 private:
  std::uint64_t emit(TraceEventType type, ErrorForm form, ErrorKind kind,
                     ErrorScope scope, std::uint64_t job, std::string detail,
                     std::uint64_t parent, const Error* e) const;

  std::string component_;
  FlightRecorder* recorder_ = nullptr;
};

}  // namespace esg::obs
