#include "pool/pool.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "obs/dashboard.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace esg::pool {

// ---- MachineSpec factories ----

MachineSpec MachineSpec::good(std::string name) {
  MachineSpec spec;
  spec.name = std::move(name);
  return spec;
}

MachineSpec MachineSpec::misconfigured_java(std::string name) {
  MachineSpec spec;
  spec.name = std::move(name);
  spec.startd.owner_asserts_java = true;      // the owner *believes* it works
  spec.startd.jvm.installed = true;           // the binary exists...
  spec.startd.jvm.classpath_ok = false;       // ...but its libraries do not
  return spec;
}

MachineSpec MachineSpec::tiny_heap(std::string name, std::int64_t bytes) {
  MachineSpec spec;
  spec.name = std::move(name);
  spec.startd.jvm.heap_bytes = bytes;
  return spec;
}

// ---- Pool ----

Pool::Pool(PoolConfig config)
    : config_(std::move(config)), engine_(config_.seed), fabric_(engine_) {
  // The engine's own context stamps log lines and trace events with this
  // pool's simulated clock; nothing process-wide is touched, so any number
  // of pools can coexist (pool/sweep.hpp runs them on separate threads).
  if (config_.trace) {
    engine_.context().recorder().set_enabled(true);
    engine_.context().recorder().set_capacity(config_.trace_capacity);
    // Tap the recorder for the live dashboard aggregate: the aggregator
    // sees every span before the ring can wrap, so flow counters stay
    // complete even when the retained journal is truncated.
    aggregator_ = std::make_unique<obs::ScopeAggregator>(
        config_.dashboard_slice);
    aggregator_->attach(engine_.context().recorder());
  }

  // Name anonymous machines.
  for (std::size_t i = 0; i < config_.machines.size(); ++i) {
    if (config_.machines[i].name.empty()) {
      config_.machines[i].name = "exec" + std::to_string(i);
    }
  }

  const daemons::Ports ports;
  const net::Address mm_addr{"central", ports.matchmaker};

  matchmaker_ = std::make_unique<daemons::Matchmaker>(
      engine_, fabric_, "central", ports, config_.timeouts);
  matchmaker_->set_index_mode(config_.index_mode);

  submit_fs_ = std::make_unique<fs::SimFileSystem>(config_.submit.name);
  submit_fs_->add_mount("/home", 0);
  (void)submit_fs_->mkdirs("/out");
  (void)submit_fs_->mkdirs("/spool");
  if (config_.submit.fs_fault_rate > 0) {
    submit_fs_->set_transient_fault_rate(
        config_.submit.fs_fault_rate,
        engine_.rng().fork(rng_streams::fs_faults(config_.submit.name)));
  }
  schedd_ = std::make_unique<daemons::Schedd>(
      engine_, fabric_, *submit_fs_, config_.submit.name, config_.discipline,
      mm_addr, ports, config_.timeouts);

  for (const SubmitSpec& spec : config_.extra_submitters) {
    Submitter submitter;
    submitter.fs = std::make_unique<fs::SimFileSystem>(spec.name);
    submitter.fs->add_mount("/home", 0);
    (void)submitter.fs->mkdirs("/out");
    (void)submitter.fs->mkdirs("/spool");
    if (spec.fs_fault_rate > 0) {
      submitter.fs->set_transient_fault_rate(
          spec.fs_fault_rate, engine_.rng().fork(rng_streams::fs_faults(spec.name)));
    }
    submitter.schedd = std::make_unique<daemons::Schedd>(
        engine_, fabric_, *submitter.fs, spec.name, config_.discipline,
        mm_addr, ports, config_.timeouts);
    // Disjoint job-id ranges: attempt ground truth is keyed by job id
    // across the whole grid.
    submitter.schedd->set_job_id_base((extra_submitters_.size() + 1) *
                                      1000000ULL);
    extra_submitters_[spec.name] = std::move(submitter);
  }

  for (const MachineSpec& spec : config_.machines) {
    Machine machine;
    machine.fs = std::make_unique<fs::SimFileSystem>(spec.name);
    machine.fs->add_mount("/scratch", spec.startd.scratch_capacity_bytes);
    if (spec.fs_fault_rate > 0) {
      machine.fs->set_transient_fault_rate(
          spec.fs_fault_rate, engine_.rng().fork(rng_streams::fs_faults(spec.name)));
    }
    if (spec.silent_corruption_rate > 0) {
      machine.fs->set_silent_corruption_rate(
          spec.silent_corruption_rate,
          engine_.rng().fork(rng_streams::fs_corruption(spec.name)));
    }
    machine.startd = std::make_unique<daemons::Startd>(
        engine_, fabric_, *machine.fs, spec.name, spec.startd,
        config_.discipline, mm_addr, ports, config_.timeouts);
    machine.startd->set_ground_truth(&ground_truth_);
    fabric_.set_host_faults(spec.name, spec.net_faults);
    machines_[spec.name] = std::move(machine);
  }
}

Pool::~Pool() = default;

void Pool::boot() {
  if (booted_) return;
  booted_ = true;
  matchmaker_->boot();
  schedd_->boot();
  for (auto& [name, submitter] : extra_submitters_) submitter.schedd->boot();
  for (auto& [name, machine] : machines_) machine.startd->boot();
}

fs::SimFileSystem* Pool::machine_fs(const std::string& name) {
  auto it = machines_.find(name);
  return it == machines_.end() ? nullptr : it->second.fs.get();
}

daemons::Startd* Pool::startd(const std::string& name) {
  auto it = machines_.find(name);
  return it == machines_.end() ? nullptr : it->second.startd.get();
}

void Pool::stage_input(const std::string& path, const std::string& data) {
  (void)submit_fs_->mkdirs(path.substr(0, path.rfind('/')));
  Result<void> wrote = submit_fs_->write_file(path, data);
  (void)wrote;
}

JobId Pool::submit(daemons::JobDescription description) {
  const JobId id = schedd_->submit(std::move(description));
  submitted_.push_back(id);
  return id;
}

daemons::Schedd* Pool::schedd_at(const std::string& host) {
  if (host == config_.submit.name) return schedd_.get();
  auto it = extra_submitters_.find(host);
  return it == extra_submitters_.end() ? nullptr : it->second.schedd.get();
}

JobId Pool::submit_at(const std::string& host,
                      daemons::JobDescription description) {
  daemons::Schedd* schedd = schedd_at(host);
  if (schedd == nullptr) return JobId{};
  return schedd->submit(std::move(description));
}

bool Pool::run_until_done(SimTime limit) {
  boot();
  return engine_.run_until(
      [this] {
        if (!schedd_->all_done()) return false;
        for (const auto& [name, submitter] : extra_submitters_) {
          if (!submitter.schedd->all_done()) return false;
        }
        return true;
      },
      engine_.now() + limit);
}

std::string Pool::status_string() const {
  std::string out;
  out += strfmt("%-12s %-10s %-6s %-6s\n", "machine", "state", "java",
                "owner");
  for (const auto& [name, machine] : machines_) {
    out += strfmt("%-12s %-10s %-6s %-6s\n", name.c_str(),
                  machine.startd->claimed() ? "Claimed" : "Unclaimed",
                  machine.startd->advertises_java() ? "yes" : "no",
                  machine.startd->owner_active() ? "active" : "away");
  }
  out += strfmt("\n%-6s %-14s %-9s %-10s %s\n", "job", "state", "attempts",
                "universe", "last machine");
  std::vector<const daemons::Schedd*> schedds{schedd_.get()};
  for (const auto& [name, submitter] : extra_submitters_) {
    schedds.push_back(submitter.schedd.get());
  }
  for (const daemons::Schedd* schedd : schedds) {
    for (const auto& [id, record] : schedd->jobs()) {
      out += strfmt(
          "%-6llu %-14s %-9zu %-10s %s\n",
          static_cast<unsigned long long>(id),
          std::string(daemons::job_state_name(record.state)).c_str(),
          record.attempts.size(),
          std::string(daemons::universe_name(record.description.universe))
              .c_str(),
          record.attempts.empty() ? "-"
                                  : record.attempts.back().machine.c_str());
    }
  }
  return out;
}

std::string Pool::prometheus_str() {
  if (aggregator_ != nullptr) {
    obs::register_flow_metrics(flow(), metrics_);
  }
  return obs::to_prometheus(recorder(), metrics_.prometheus_str());
}

PoolReport Pool::report() const {
  PoolReport report;
  report.discipline = config_.discipline.name();
  report.flow = flow();
  report.network_messages = fabric_.total_messages();
  report.network_bytes = fabric_.total_bytes();
  report.makespan_seconds = engine_.now().as_sec();

  // Index ground truth by job id; the last entry per job is the attempt
  // whose outcome (if any) the user ultimately received.
  std::map<std::uint64_t, const daemons::AttemptGroundTruth*> last_truth;
  for (const daemons::AttemptGroundTruth& truth : ground_truth_.entries()) {
    ++report.total_attempts;  // only *executed* attempts have ground truth
    if (truth.incidental()) {
      ++report.incidental_attempts;
      report.wasted_cpu_seconds += truth.cpu_seconds;
    }
    last_truth[truth.job_id] = &truth;
  }

  std::vector<const daemons::Schedd*> schedds{schedd_.get()};
  for (const auto& [name, submitter] : extra_submitters_) {
    schedds.push_back(submitter.schedd.get());
  }
  double turnaround_sum = 0;
  int finished = 0;
  for (const daemons::Schedd* schedd : schedds)
  for (const auto& [id, record] : schedd->jobs()) {
    ++report.jobs_total;
    switch (record.state) {
      case daemons::JobState::kIdle:
      case daemons::JobState::kClaiming:
      case daemons::JobState::kRunning:
        ++report.unfinished;
        continue;
      case daemons::JobState::kUnexecutable: {
        ++report.unexecutable;
        const bool job_scope =
            record.final_summary.environment_error.has_value() &&
            record.final_summary.environment_error->scope() ==
                ErrorScope::kJob;
        if (!job_scope) ++report.gave_up;
        break;
      }
      case daemons::JobState::kCompleted: {
        const auto truth_it = last_truth.find(id);
        const daemons::AttemptGroundTruth* truth =
            truth_it == last_truth.end() ? nullptr : truth_it->second;
        const bool genuinely_program =
            truth != nullptr && !truth->incidental();
        if (record.final_summary.have_program_result && genuinely_program) {
          report.goodput_cpu_seconds += truth->cpu_seconds;
          const auto& rf = record.final_summary.program_result;
          const bool is_error =
              rf.exit_by == jvm::ResultFile::ExitBy::kException ||
              (rf.exit_by == jvm::ResultFile::ExitBy::kSystemExit &&
               rf.exit_code != 0);
          if (is_error) {
            ++report.completed_program_error;
          } else {
            ++report.completed_genuine;
          }
        } else {
          // The user was handed an environmental condition — either
          // labelled as such (naive completes with an error summary) or
          // silently laundered into a program result.
          ++report.user_incidental_exposures;
        }
        break;
      }
    }
    turnaround_sum += (record.finished - record.submitted).as_sec();
    ++finished;
  }
  if (finished > 0) report.mean_turnaround_seconds = turnaround_sum / finished;
  return report;
}

}  // namespace esg::pool
