// Pool: builds a whole simulated grid and runs experiments on it.
//
// One Pool owns the engine, the network fabric, a submit machine (schedd +
// filesystem), N execution machines (startd + filesystem each), and a
// matchmaker. Experiment code configures machines and faults, submits
// jobs, runs to completion, and reads a PoolReport.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "daemons/config.hpp"
#include "daemons/groundtruth.hpp"
#include "daemons/matchmaker.hpp"
#include "daemons/schedd.hpp"
#include "daemons/startd.hpp"
#include "fs/simfs.hpp"
#include "net/fabric.hpp"
#include "obs/aggregate.hpp"
#include "pool/report.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"

namespace esg::pool {

struct MachineSpec {
  std::string name;                  ///< defaults to "execN"
  daemons::StartdConfig startd;
  double fs_fault_rate = 0;          ///< transient I/O fault probability
  /// Probability any local read is silently corrupted (implicit errors,
  /// §5) — detectable only by end-to-end machinery (pool/reliable.hpp).
  double silent_corruption_rate = 0;
  net::HostFaults net_faults;        ///< host-level network fault model

  /// A correctly configured machine.
  static MachineSpec good(std::string name = {});
  /// The paper's black hole: the owner asserts Java but the installation
  /// is broken — jobs are attracted, started, and fail immediately.
  static MachineSpec misconfigured_java(std::string name = {});
  /// JVM present but with a tiny heap (virtual-machine-scope failures).
  static MachineSpec tiny_heap(std::string name = {}, std::int64_t bytes = 1 << 20);
};

struct SubmitSpec {
  std::string name = "submit0";
  double fs_fault_rate = 0;
};

struct PoolConfig {
  std::uint64_t seed = 42;
  daemons::DisciplineConfig discipline;
  daemons::Timeouts timeouts;
  SubmitSpec submit;
  /// Additional submit machines (each with its own schedd and filesystem);
  /// all share the one matchmaker and the execution machines.
  std::vector<SubmitSpec> extra_submitters;
  std::vector<MachineSpec> machines;
  /// Candidate selection strategy for the matchmaker. The default indexed
  /// mode is byte-identical in outcomes to the exhaustive scan (the index
  /// is a prefilter; equivalence is pinned by tests) — the knob exists for
  /// those equivalence tests and for baseline measurements.
  daemons::IndexMode index_mode = daemons::IndexMode::kIndexed;
  /// Enable this pool's flight recorder at construction (the per-context
  /// twin of the old FlightRecorder::global().set_enabled(true) dance).
  bool trace = false;
  std::size_t trace_capacity = 8192;
  /// Time-slice width of the error-flow dashboard aggregate built while
  /// tracing (see obs/aggregate.hpp); ignored when trace is off.
  SimTime dashboard_slice = SimTime::minutes(1);
};

class Pool {
 public:
  explicit Pool(PoolConfig config);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Start all daemons. Must be called before submitting.
  void boot();

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  /// This pool's simulation context and its observability organs — the
  /// replacements for the old process-wide singletons.
  [[nodiscard]] sim::SimContext& context() { return engine_.context(); }
  [[nodiscard]] obs::FlightRecorder& recorder() {
    return engine_.context().recorder();
  }
  [[nodiscard]] PrincipleAudit& audit() { return engine_.context().audit(); }
  /// The live error-flow aggregate for this run (dashboards, esg-top);
  /// empty unless PoolConfig::trace is set. Includes the recorder's
  /// ring-wrap dropped-span accounting.
  [[nodiscard]] obs::FlowAggregate flow() const {
    return aggregator_ ? aggregator_->snapshot() : obs::FlowAggregate{};
  }
  /// Live aggregator handle (null when tracing is off) — esg-top polls it.
  [[nodiscard]] const obs::ScopeAggregator* aggregator() const {
    return aggregator_.get();
  }
  /// The pool's metric registry (experiment harnesses add their own
  /// counters/gauges/histograms here).
  [[nodiscard]] sim::MetricsRegistry& metrics() { return metrics_; }
  /// One combined Prometheus page: registry metrics, trace counters, and —
  /// when tracing — the current per-scope error-flow counters
  /// (trace.flow.*), freshly registered from the live aggregate.
  [[nodiscard]] std::string prometheus_str();
  [[nodiscard]] net::NetworkFabric& fabric() { return fabric_; }
  [[nodiscard]] daemons::Schedd& schedd() { return *schedd_; }
  /// A named submitter's schedd (the primary or an extra); null if absent.
  [[nodiscard]] daemons::Schedd* schedd_at(const std::string& host);
  [[nodiscard]] daemons::Matchmaker& matchmaker() { return *matchmaker_; }
  [[nodiscard]] fs::SimFileSystem& submit_fs() { return *submit_fs_; }
  [[nodiscard]] fs::SimFileSystem* machine_fs(const std::string& name);
  [[nodiscard]] daemons::Startd* startd(const std::string& name);
  [[nodiscard]] daemons::GroundTruthLog& ground_truth() {
    return ground_truth_;
  }
  [[nodiscard]] const PoolConfig& config() const { return config_; }

  /// Put a file on the submit machine (job inputs).
  void stage_input(const std::string& path, const std::string& data);

  JobId submit(daemons::JobDescription description);
  /// Submit via a named extra submitter.
  JobId submit_at(const std::string& host, daemons::JobDescription description);

  /// Run until every submitted job is terminal or `limit` elapses.
  /// Returns true when everything finished.
  bool run_until_done(SimTime limit = SimTime::hours(4));

  [[nodiscard]] PoolReport report() const;

  /// condor_status-style snapshot: one line per machine (state, java,
  /// owner activity) and one per job (state, attempts, machine).
  [[nodiscard]] std::string status_string() const;

 private:
  PoolConfig config_;
  sim::Engine engine_;
  net::NetworkFabric fabric_;
  daemons::GroundTruthLog ground_truth_;
  std::unique_ptr<fs::SimFileSystem> submit_fs_;
  std::unique_ptr<daemons::Matchmaker> matchmaker_;
  std::unique_ptr<daemons::Schedd> schedd_;
  struct Submitter {
    std::unique_ptr<fs::SimFileSystem> fs;
    std::unique_ptr<daemons::Schedd> schedd;
  };
  std::map<std::string, Submitter> extra_submitters_;
  struct Machine {
    std::unique_ptr<fs::SimFileSystem> fs;
    std::unique_ptr<daemons::Startd> startd;
  };
  std::map<std::string, Machine> machines_;
  std::vector<JobId> submitted_;
  sim::MetricsRegistry metrics_;
  /// Declared after engine_, so it detaches its recorder tap before the
  /// engine (and the recorder inside its context) is torn down.
  std::unique_ptr<obs::ScopeAggregator> aggregator_;
  bool booted_ = false;
};

}  // namespace esg::pool
