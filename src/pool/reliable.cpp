#include "pool/reliable.hpp"

#include <algorithm>
#include <map>

#include "core/audit.hpp"
#include "obs/trace.hpp"
#include "pool/pool.hpp"

namespace esg::pool {

std::vector<JobId> submit_redundant(Pool& pool,
                                    const daemons::JobDescription& job,
                                    int replicas) {
  std::vector<JobId> ids;
  ids.reserve(static_cast<std::size_t>(std::max(0, replicas)));
  for (int i = 0; i < replicas; ++i) {
    daemons::JobDescription clone = job;
    clone.id = JobId{};  // the schedd assigns ids
    ids.push_back(pool.submit(std::move(clone)));
  }
  return ids;
}

ReliableResult vote_outputs(Pool& pool, const std::vector<JobId>& ids,
                            const std::string& output_name) {
  ReliableResult result;
  result.replicas = static_cast<int>(ids.size());

  std::vector<std::string> outputs;
  for (const JobId id : ids) {
    const std::string path =
        "/out/job_" + std::to_string(id.value()) + "/" + output_name;
    Result<std::string> data = pool.submit_fs().read_file(path);
    if (data.ok()) outputs.push_back(std::move(data).value());
  }
  result.outputs_collected = static_cast<int>(outputs.size());
  if (outputs.empty()) return result;

  // Majority vote over content.
  std::map<std::string, int> votes;
  for (const std::string& out : outputs) ++votes[out];
  auto winner = std::max_element(
      votes.begin(), votes.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  result.agreeing = winner->second;
  result.implicit_error_detected = votes.size() > 1;

  // The grid reported success for every replica, so a disagreement is an
  // *implicit* error surfacing for the first time — record the observation
  // so the flow dashboards show the end-to-end layer's catches.
  const obs::TraceSink trace =
      pool.engine().context().trace("voter@" + pool.submit_fs().host());
  std::uint64_t observed = 0;
  const Error disagreement(ErrorKind::kIoError, ErrorScope::kJob,
                           "replica outputs disagree (silent corruption)");
  if (result.implicit_error_detected) {
    observed = trace.implicit(ErrorKind::kIoError, ErrorScope::kJob, 0,
                              "replica outputs disagree");
  }

  if (winner->second * 2 <= static_cast<int>(outputs.size())) {
    // Detected but unmaskable: every copy might be the wrong one. The
    // condition surfaces as a *scoped error*, not a bare failed result.
    // Program scope, because that is the one scope whose disposition is
    // "deliver to the user" (§2.3): no grid-level retry can repair a result
    // set that disagrees with itself, and the attribution oracles only see
    // conditions that flow as errors.
    result.no_majority = true;
    result.error =
        Error(ErrorKind::kIoError, ErrorScope::kProgram,
              "replica vote inconclusive: " + std::to_string(result.agreeing) +
                  " of " + std::to_string(result.outputs_collected) +
                  " outputs agree")
            .caused_by(disagreement);
    const std::uint64_t surfaced =
        trace.raised(*result.error, 0, "vote_outputs: no majority", observed);
    trace.delivered(*result.error, 0, "unmaskable: surfaced to the user",
                    surfaced);
    return result;
  }
  if (result.implicit_error_detected) {
    // A minority of replicas silently produced wrong bytes; the vote
    // masked the implicit error before it became a user-visible failure.
    pool.engine().context().audit().record(Principle::kP1,
                                           AuditOutcome::kApplied,
                                           "vote_outputs");
    trace.masked(disagreement, 0, "majority vote over replica outputs",
                 observed);
  }
  result.delivered = true;
  result.output = winner->first;
  return result;
}

}  // namespace esg::pool
