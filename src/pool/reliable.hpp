// End-to-end reliability above the grid (§5).
//
// "The end-to-end principle tells us that the ultimate responsibility for
// detecting such [implicit] errors lies with a higher level of software. A
// process above Condor may work on behalf of the user to analyze outputs
// and replicate or resubmit jobs that fail due to implicit errors or
// failures in Condor itself."
//
// This is that process: submit N replicas of a job, collect their declared
// outputs, and majority-vote. Disagreement *is* the detection of an
// implicit error; a majority masks it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "core/error.hpp"
#include "daemons/job.hpp"

namespace esg::pool {

class Pool;

struct ReliableResult {
  /// A majority output exists and was delivered.
  bool delivered = false;
  /// Some replica's output disagreed with the majority: an implicit error
  /// was detected (and, if delivered, masked).
  bool implicit_error_detected = false;
  /// No majority: the implicit error was detected but cannot be masked.
  bool no_majority = false;
  int replicas = 0;
  int outputs_collected = 0;
  int agreeing = 0;            ///< votes for the winning content
  std::string output;          ///< the winning content (when delivered)
  /// An inconclusive vote is not a bare failed result: it surfaces here as
  /// a scoped program-scope error (caused by the job-scope disagreement),
  /// the same Error the trace shows delivered to the user — so attribution
  /// oracles see the condition instead of an unexplained absence.
  std::optional<Error> error;
};

/// Submit `replicas` clones of `job` (ids are returned in order). The job
/// must declare at least one output file; `job.id` is ignored.
std::vector<JobId> submit_redundant(Pool& pool,
                                    const daemons::JobDescription& job,
                                    int replicas);

/// After the pool has run to completion: collect `output_name` from each
/// replica's output directory and majority-vote the contents.
ReliableResult vote_outputs(Pool& pool, const std::vector<JobId>& ids,
                            const std::string& output_name);

}  // namespace esg::pool
