#include "pool/report.hpp"

#include "common/strings.hpp"
#include "obs/dashboard.hpp"

namespace esg::pool {

std::string PoolReport::str() const {
  std::string out;
  out += strfmt("discipline                 %s\n", discipline.c_str());
  out += strfmt("jobs total                 %d\n", jobs_total);
  out += strfmt("  completed (genuine)      %d\n", completed_genuine);
  out += strfmt("  completed (program err)  %d\n", completed_program_error);
  out += strfmt("  incidental exposures     %d\n", user_incidental_exposures);
  out += strfmt("  unexecutable             %d (gave up: %d)\n", unexecutable,
                gave_up);
  out += strfmt("  unfinished               %d\n", unfinished);
  out += strfmt("attempts                   %llu (incidental: %llu)\n",
                static_cast<unsigned long long>(total_attempts),
                static_cast<unsigned long long>(incidental_attempts));
  out += strfmt("wasted cpu                 %.1fs\n", wasted_cpu_seconds);
  out += strfmt("goodput cpu                %.1fs\n", goodput_cpu_seconds);
  out += strfmt("network                    %llu msgs, %llu bytes\n",
                static_cast<unsigned long long>(network_messages),
                static_cast<unsigned long long>(network_bytes));
  out += strfmt("makespan                   %.1fs\n", makespan_seconds);
  out += strfmt("mean turnaround            %.1fs\n", mean_turnaround_seconds);
  return out;
}

std::string PoolReport::dashboard_str(std::string_view title) const {
  if (flow.empty()) return {};
  obs::DashboardOptions options;
  options.title = title.empty() ? discipline : std::string(title);
  return obs::render_dashboard(flow, options);
}

std::string PoolReport::dashboard_json(std::string_view label) const {
  return obs::dashboard_json(flow, label.empty() ? discipline : label);
}

std::string PoolReport::table_header() {
  return strfmt("%-22s %5s %6s %7s %7s %7s %8s %9s %9s %9s",
                "configuration", "jobs", "ok", "prgerr", "incid", "unexec",
                "attempts", "wasteCPUs", "goodCPUs", "netMsgs");
}

std::string PoolReport::table_row(const std::string& label) const {
  return strfmt("%-22s %5d %6d %7d %7d %7d %8llu %9.1f %9.1f %9llu",
                label.c_str(), jobs_total, completed_genuine,
                completed_program_error, user_incidental_exposures,
                unexecutable,
                static_cast<unsigned long long>(total_attempts),
                wasted_cpu_seconds, goodput_cpu_seconds,
                static_cast<unsigned long long>(network_messages));
}

}  // namespace esg::pool
