// PoolReport: the experiment harness's view of one run.
//
// Combines three sources: the schedd's job records (what the *user* saw),
// the ground-truth log (what *actually* happened at execution sites), and
// the fabric's traffic counters. The headline metric is the paper's: how
// often was the user exposed to an incidental error as if it were a
// program result — the postmortem burden of §2.3.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/aggregate.hpp"

namespace esg::pool {

struct PoolReport {
  std::string discipline;

  int jobs_total = 0;
  /// Program genuinely finished (per ground truth) and the user was told
  /// a program result.
  int completed_genuine = 0;
  /// Job ended with a genuine program-scope error (its own exception /
  /// exit code) delivered to the user — desirable delivery (§2.3: users
  /// *wanted* ArrayIndexOutOfBounds).
  int completed_program_error = 0;
  /// The user received an incidental (environment) condition as if it were
  /// the job's own doing — the §2.3 postmortem burden.
  int user_incidental_exposures = 0;
  /// Job returned as unexecutable with a job-scope explanation.
  int unexecutable = 0;
  /// Jobs the schedd gave up on after max_attempts (subset of
  /// unexecutable).
  int gave_up = 0;
  /// Jobs still pending when time ran out.
  int unfinished = 0;

  std::uint64_t total_attempts = 0;
  /// Execution attempts that ended for environmental reasons.
  std::uint64_t incidental_attempts = 0;
  /// CPU burned by attempts that ended incidentally (the §5 waste).
  double wasted_cpu_seconds = 0;
  /// CPU from attempts that produced the job's final program result.
  double goodput_cpu_seconds = 0;

  std::uint64_t network_messages = 0;
  std::uint64_t network_bytes = 0;

  double makespan_seconds = 0;
  /// Mean time from submit to terminal state, over finished jobs.
  double mean_turnaround_seconds = 0;

  /// The run's error-flow aggregate (empty unless PoolConfig::trace was
  /// set): per-(scope, machine, kind, disposition) time-sliced counters,
  /// the data behind dashboard_str()/dashboard_json() and tools/esg-top.
  obs::FlowAggregate flow;

  [[nodiscard]] std::string str() const;

  /// The per-scope / per-machine dashboard table for this run's flow
  /// (obs::render_dashboard); empty string when tracing was off.
  [[nodiscard]] std::string dashboard_str(std::string_view title = {}) const;
  /// Deterministic JSON dashboard dump (obs::dashboard_json); "{}"-shaped
  /// but fully populated only when tracing was on.
  [[nodiscard]] std::string dashboard_json(std::string_view label = {}) const;

  /// One formatted table row (pairs with table_header()).
  [[nodiscard]] std::string table_row(const std::string& label) const;
  static std::string table_header();
};

}  // namespace esg::pool
