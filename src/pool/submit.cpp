#include "pool/submit.hpp"

#include "common/strings.hpp"

namespace esg::pool {

namespace {

Error bad(const std::string& message) {
  return Error(ErrorKind::kBadJobDescription, ErrorScope::kJob, message);
}

std::vector<std::string> parse_file_list(const std::string& text) {
  std::vector<std::string> out;
  for (const std::string& piece : split(text, ',')) {
    const std::string_view trimmed = trim(piece);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

}  // namespace

Result<void> stage_program(fs::SimFileSystem& fs, const std::string& path,
                           const jvm::JobProgram& program) {
  const std::size_t slash = path.rfind('/');
  if (slash != std::string::npos && slash > 0) {
    if (Result<void> r = fs.mkdirs(path.substr(0, slash)); !r.ok()) return r;
  }
  return fs.write_file(path, jvm::serialize_program(program));
}

Result<std::vector<daemons::JobDescription>> parse_submit_text(
    fs::SimFileSystem& fs, const std::string& text) {
  daemons::JobDescription prototype;
  prototype.requirements = "TARGET.HasJava =?= true";
  bool have_executable = false;
  int queued_total = 0;
  std::vector<daemons::JobDescription> jobs;

  for (const std::string& raw : split(text, '\n')) {
    std::string line{trim(raw)};
    // Strip comments.
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line = std::string(trim(line.substr(0, hash)));
    }
    if (line.empty()) continue;

    // `queue [N]` emits N copies of the prototype as configured so far.
    if (iequals(line.substr(0, 5), "queue")) {
      // Materialize: trim() returns a view, and line.substr() is a
      // temporary that must not outlive this statement.
      const std::string arg{trim(line.substr(5))};
      int count = 1;
      if (!arg.empty()) {
        char* end = nullptr;
        count = static_cast<int>(std::strtol(arg.c_str(), &end, 10));
        if (end == arg.c_str() || count <= 0) {
          return bad("bad queue count: '" + arg + "'");
        }
      }
      if (!have_executable) {
        return bad("queue before executable");
      }
      // Validate the prototype's expressions per batch — later batches may
      // have different (possibly broken) requirements.
      if (Result<classad::ClassAd> ad = prototype.to_summary_ad(); !ad.ok()) {
        return std::move(ad).error();
      }
      for (int i = 0; i < count; ++i) jobs.push_back(prototype);
      queued_total += count;
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return bad("not a 'key = value' line: '" + line + "'");
    }
    const std::string key = to_lower(trim(line.substr(0, eq)));
    const std::string value{trim(line.substr(eq + 1))};

    if (key == "universe") {
      const std::optional<daemons::Universe> universe =
          daemons::parse_universe(to_lower(value));
      if (!universe.has_value()) {
        return bad("unknown universe '" + value + "'");
      }
      prototype.universe = *universe;
      if (*universe != daemons::Universe::kJava &&
          prototype.requirements == "TARGET.HasJava =?= true") {
        prototype.requirements = "true";  // non-java default needs no JVM
      }
    } else if (key == "executable") {
      Result<std::string> image = fs.read_file(value);
      if (!image.ok()) {
        return bad("cannot read executable '" + value + "': " +
                   image.error().message());
      }
      Result<jvm::JobProgram> program =
          jvm::deserialize_program(image.value());
      if (!program.ok()) {
        return bad("executable '" + value + "' is not a valid program: " +
                   program.error().message());
      }
      prototype.program = std::move(program).value();
      have_executable = true;
    } else if (key == "requirements") {
      prototype.requirements = value;
    } else if (key == "rank") {
      prototype.rank = value;
    } else if (key == "owner") {
      prototype.owner = value;
    } else if (key == "image_size_mb") {
      char* end = nullptr;
      prototype.image_size_mb = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || prototype.image_size_mb <= 0) {
        return bad("bad image_size_mb: '" + value + "'");
      }
    } else if (key == "transfer_input_files") {
      prototype.input_files = parse_file_list(value);
    } else if (key == "transfer_output_files") {
      prototype.output_files = parse_file_list(value);
    } else {
      // Principle 4 applied to the submit language too: a concise, finite
      // vocabulary. Unknown keys are errors, not silently-ignored typos.
      return bad("unknown submit key '" + key + "'");
    }
  }
  if (queued_total == 0) {
    return bad("submit description queues no jobs (missing 'queue'?)");
  }
  return jobs;
}

Result<std::vector<daemons::JobDescription>> parse_submit_file(
    fs::SimFileSystem& fs, const std::string& path) {
  Result<std::string> text = fs.read_file(path);
  if (!text.ok()) {
    return bad("cannot read submit file '" + path + "': " +
               text.error().message());
  }
  return parse_submit_text(fs, text.value());
}

}  // namespace esg::pool
