// Submit description files — the condor_submit surface.
//
// A user describes jobs in a small key = value language and queues N of
// them; the executable is a program image staged on the submit machine's
// filesystem:
//
//   universe               = java
//   executable             = /home/alice/sim.prog
//   requirements           = TARGET.HasJava =?= true && TARGET.Memory >= 64
//   rank                   = TARGET.Memory
//   owner                  = alice
//   image_size_mb          = 32
//   transfer_input_files   = /home/alice/a.dat, /home/alice/b.dat
//   transfer_output_files  = result.dat
//   queue 3
//
// Parsing is defensive (user input), and the executable must deserialize
// as a valid program image — a corrupt one is rejected here, before it
// wastes grid capacity (contrast with JobProgram::image_corrupt, which
// models corruption the submit side *cannot* see).
#pragma once

#include <string>
#include <vector>

#include "daemons/job.hpp"
#include "fs/simfs.hpp"

namespace esg::pool {

/// Parse a submit description. `fs` is the submit machine's filesystem,
/// used to load the executable. Returns one JobDescription per queued
/// instance (ids unassigned — the schedd assigns them at submit).
Result<std::vector<daemons::JobDescription>> parse_submit_text(
    fs::SimFileSystem& fs, const std::string& text);

/// Load and parse a submit file from the submit machine's filesystem.
Result<std::vector<daemons::JobDescription>> parse_submit_file(
    fs::SimFileSystem& fs, const std::string& path);

/// Store a program image where a submit file's `executable` can name it.
Result<void> stage_program(fs::SimFileSystem& fs, const std::string& path,
                           const jvm::JobProgram& program);

}  // namespace esg::pool
