#include "pool/sweep.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "obs/dashboard.hpp"
#include "obs/export.hpp"

namespace esg::pool {
namespace {

/// A per-worker deque of cell indices. The owner pops from the back,
/// thieves take from the front — opposite ends keep the common case
/// (owner working through its own deal) contention-free in practice; a
/// plain mutex is plenty at sweep-cell granularity, where each task is a
/// whole simulation.
class StealQueue {
 public:
  void push(std::size_t index) {
    const std::lock_guard<std::mutex> lock(mu_);
    q_.push_back(index);
  }

  bool pop_back(std::size_t& out) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty()) return false;
    out = q_.back();
    q_.pop_back();
    return true;
  }

  bool steal_front(std::size_t& out) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (q_.empty()) return false;
    out = q_.front();
    q_.pop_front();
    return true;
  }

 private:
  std::mutex mu_;
  std::deque<std::size_t> q_;
};

/// Run one cell to completion. Everything the cell touches is owned by the
/// Pool constructed here, so this is safe to call from any thread.
CellOutcome run_cell(const SweepCell& cell, std::size_t index) {
  if (cell.run) {
    CellOutcome out = cell.run();
    out.index = index;
    if (out.label.empty()) out.label = cell.label;
    return out;
  }
  CellOutcome out;
  out.index = index;
  out.seed = cell.config.seed;
  out.label = cell.label.empty() ? "seed" + std::to_string(cell.config.seed)
                                 : cell.label;
  Pool pool(cell.config);
  if (cell.setup) cell.setup(pool);
  out.finished = pool.run_until_done(cell.limit);
  out.report = pool.report();
  out.engine_events = pool.engine().executed();
  if (cell.config.trace) {
    out.trace_events = pool.recorder().total_recorded();
    out.trace_dump = obs::render_dump(pool.recorder().events(), out.label);
    out.journal = obs::journal_str(pool.recorder());
  }
  return out;
}

}  // namespace

SweepReport SweepRunner::run(std::vector<SweepCell> cells) const {
  SweepReport sweep;
  sweep.cells.resize(cells.size());
  if (cells.empty()) return sweep;

  unsigned width = threads_ != 0 ? threads_ : std::thread::hardware_concurrency();
  if (width == 0) width = 1;
  if (width > cells.size()) width = static_cast<unsigned>(cells.size());
  sweep.threads_used = width;

  // Deal the cells round-robin; stealing rebalances whatever the deal got
  // wrong about per-cell cost.
  std::vector<StealQueue> queues(width);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    queues[i % width].push(i);
  }

  std::atomic<std::size_t> remaining{cells.size()};
  auto worker = [&](unsigned me) {
    std::size_t index = 0;
    while (remaining.load(std::memory_order_acquire) > 0) {
      bool got = queues[me].pop_back(index);
      for (unsigned k = 1; !got && k < width; ++k) {
        got = queues[(me + k) % width].steal_front(index);
      }
      if (!got) {
        // Every deque is empty; the cells still in flight belong to other
        // workers. Nothing left to steal — yield until they finish.
        std::this_thread::yield();
        continue;
      }
      sweep.cells[index] = run_cell(cells[index], index);
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    }
  };

  const auto started = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(width - 1);
  for (unsigned w = 1; w < width; ++w) {
    threads.emplace_back(worker, w);
  }
  worker(0);
  for (std::thread& t : threads) t.join();
  sweep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  return sweep;
}

obs::FlowAggregate SweepReport::merged_flow() const {
  obs::FlowAggregate merged;
  for (const CellOutcome& cell : cells) merged.merge(cell.report.flow);
  return merged;
}

std::string SweepReport::merged_dashboard_json(const std::string& label) const {
  return obs::dashboard_json(merged_flow(), label);
}

const CellOutcome* SweepReport::find(const std::string& label) const {
  for (const CellOutcome& cell : cells) {
    if (cell.label == label) return &cell;
  }
  return nullptr;
}

std::string SweepReport::str() const {
  std::ostringstream out;
  out << PoolReport::table_header() << "\n";
  int unfinished = 0;
  for (const CellOutcome& cell : cells) {
    out << cell.report.table_row(cell.label) << "\n";
    if (!cell.finished) ++unfinished;
  }
  out << "sweep: " << cells.size() << " cell(s) on " << threads_used
      << " thread(s), " << wall_seconds << "s wall";
  if (unfinished > 0) out << ", " << unfinished << " cell(s) hit the limit";
  out << "\n";
  return out.str();
}

}  // namespace esg::pool
