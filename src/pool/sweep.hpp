// Parallel deterministic sweeps: run N independent pool simulations across
// a work-stealing thread pool.
//
// Each cell constructs its own Pool, and therefore its own Engine and
// SimContext — log sink, flight recorder, principle audit, id generators
// are all per-cell. Nothing in a cell touches process-wide state, so cells
// are free to run on any thread in any order: a cell's PoolReport and
// trace journal are byte-identical whether the sweep runs serially, on one
// worker, or on eight.
//
//   SweepRunner runner(8);
//   SweepReport sweep = runner.run(cells);
//   for (const CellOutcome& cell : sweep.cells) { ... }
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pool/pool.hpp"
#include "pool/report.hpp"

namespace esg::pool {

/// What came out of one cell. `cells` in SweepReport keeps submission
/// order regardless of which worker ran what when.
struct CellOutcome {
  std::size_t index = 0;
  std::string label;
  std::uint64_t seed = 0;
  /// run_until_done's verdict: every submitted job reached a terminal
  /// state within the cell's limit.
  bool finished = false;
  PoolReport report;
  /// Human-readable journal dump (empty unless config.trace was set).
  /// Deterministic per seed — the byte-identity witness for tests.
  std::string trace_dump;
  /// The same retained spans as a machine-readable esg-journal v1 document
  /// (obs::parse_journal reads it back). Post-hoc consumers — the chaos
  /// harness's resilience oracles, esg-top --journal — evaluate over this,
  /// so a cell's verdict can be recomputed anywhere from its outcome alone.
  std::string journal;
  std::uint64_t trace_events = 0;
  /// Engine events executed — a cheap determinism fingerprint.
  std::uint64_t engine_events = 0;
};

/// One cell of a parameter sweep: a pool configuration plus the experiment
/// to run on it.
struct SweepCell {
  PoolConfig config;
  /// Stages inputs and submits jobs. Runs on the worker thread that picked
  /// the cell up, with exclusive ownership of the Pool — it must not touch
  /// anything outside the Pool it is given.
  std::function<void(Pool&)> setup;
  /// Wall-clock budget in *simulated* time (passed to run_until_done).
  SimTime limit = SimTime::hours(8);
  /// Row label in the report; defaults to "seed<N>".
  std::string label;
  /// Custom runner: when set, replaces the Pool-based execution entirely —
  /// the worker calls it (on its thread) and uses the returned outcome
  /// verbatim, only stamping index and (if empty) label. The same
  /// determinism contract applies: everything the callable touches must be
  /// owned by it, so the outcome is byte-identical at any sweep width.
  /// This is how federated cells (src/flock) run a whole Federation — a
  /// multi-pool topology one PoolConfig cannot describe — under the same
  /// work-stealing runner and campaign machinery.
  std::function<CellOutcome()> run;
};

struct SweepReport {
  std::vector<CellOutcome> cells;
  unsigned threads_used = 0;
  double wall_seconds = 0;

  /// Formatted table: one PoolReport row per cell plus a footer.
  [[nodiscard]] std::string str() const;
  /// The outcome with this label, or null.
  [[nodiscard]] const CellOutcome* find(const std::string& label) const;

  /// Every cell's error-flow aggregate folded into one (submission order,
  /// so the result is independent of worker scheduling). Empty unless
  /// cells traced.
  [[nodiscard]] obs::FlowAggregate merged_flow() const;
  /// Deterministic JSON dump of merged_flow() — byte-identical for a
  /// serial and an 8-thread run of the same cells.
  [[nodiscard]] std::string merged_dashboard_json(
      const std::string& label = "sweep") const;
};

/// Runs sweep cells across a work-stealing thread pool. Cells are dealt
/// round-robin to per-worker deques; a worker drains its own deque from
/// the back and steals from other workers' fronts when idle, so uneven
/// cell costs still saturate every thread.
class SweepRunner {
 public:
  /// `threads` = 0 picks std::thread::hardware_concurrency(). The
  /// effective width never exceeds the number of cells.
  explicit SweepRunner(unsigned threads = 0) : threads_(threads) {}

  [[nodiscard]] SweepReport run(std::vector<SweepCell> cells) const;

 private:
  unsigned threads_;
};

}  // namespace esg::pool
