#include "pool/topology.hpp"

#include "chirp/server.hpp"
#include "core/escalate.hpp"
#include "daemons/matchmaker.hpp"
#include "daemons/schedd.hpp"
#include "daemons/shadow.hpp"
#include "daemons/startd.hpp"
#include "daemons/starter.hpp"
#include "jvm/jvm.hpp"

namespace esg::pool {

analysis::TopologyModel describe_pool_topology(
    const daemons::DisciplineConfig& discipline) {
  analysis::TopologyModel model;

  // Each component states what it knows in isolation.
  chirp::describe_topology(model);
  jvm::describe_topology(model, discipline.io, discipline.wrap);
  daemons::Starter::describe_topology(model, discipline);
  daemons::Shadow::describe_topology(model, discipline);
  daemons::Schedd::describe_topology(model, discipline);
  daemons::Startd::describe_topology(model, discipline);
  daemons::Matchmaker::describe_topology(model);

  // The user: terminal consumer of job dispositions and, as the party who
  // submitted work to the pool, the manager of last resort — cluster- and
  // pool-scope conditions land on a human either way (§4: "identifies the
  // job as complete and returns it to the user").
  model.declare_component("user");
  model.declare_handler("user", ErrorScope::kPool);
  analysis::InterfaceDecl user;
  user.component = "user";
  user.routine = "user.results";
  if (discipline.scope_routing) {
    user.allowed = {
        ErrorKind::kNullPointer,     ErrorKind::kArrayIndexOutOfBounds,
        ErrorKind::kArithmeticError, ErrorKind::kUncaughtException,
        ErrorKind::kExitNonZero,     ErrorKind::kOutOfMemory,
        ErrorKind::kStackOverflow,   ErrorKind::kInternalVmError,
        ErrorKind::kCorruptImage,    ErrorKind::kClassNotFound,
        ErrorKind::kBadJobDescription};
  } else {
    user.allowed = {ErrorKind::kExitNonZero};
    user.mode = analysis::InterfaceMode::kLeak;
  }
  user.terminal = true;
  model.declare_interface(std::move(user));

  // Inter-component flows: how one component's results become another's
  // inputs, mirroring the runtime wiring.
  //
  // The shadow's remote I/O channel is a chirp backend: submit-side
  // failures travel the wire as chirp result codes.
  model.declare_flow("shadow.submit-io", "chirp.rpc");
  // The proxy's results surface inside the JVM's I/O library.
  if (discipline.io == jvm::IoDiscipline::kConcise) {
    model.declare_flow("chirp.rpc", "JavaIo.open");
    model.declare_flow("chirp.rpc", "JavaIo.read");
    model.declare_flow("chirp.rpc", "JavaIo.write");
  } else {
    model.declare_flow("chirp.rpc", "JavaIo.IOException");
    // §2.3: whatever came out of the catch-all lands in the exit code.
    model.declare_flow("JavaIo.IOException", "starter.report");
  }
  // The JVM's outcome crosses into the starter's report: the wrapper's
  // result file under §4, the bare exit code under §2.3.
  if (discipline.wrap == jvm::WrapMode::kWrapped) {
    model.declare_flow("jvm.wrapper", "starter.report");
  } else {
    model.declare_flow("jvm.execute", "starter.report");
  }
  // Reports ascend the management chain to the user.
  model.declare_flow("starter.report", "shadow.attempt");
  model.declare_flow("shadow.attempt", "schedd.disposition");
  model.declare_flow("startd.policy", "schedd.disposition");
  model.declare_flow("matchmaker.advise", "schedd.disposition");
  model.declare_flow("schedd.disposition", "user.results");

  // §5: time widens scope. The pool-wide escalation ladder is declared
  // from the same rules the runtime applies.
  if (discipline.use_escalation) {
    const ScopeEscalator escalator = ScopeEscalator::grid_defaults();
    for (const EscalationRule& rule : escalator.rules()) {
      model.declare_escalation("escalator", rule.from, rule.to);
    }
  }

  return model;
}

analysis::TopologyModel describe_federated_topology(
    const daemons::DisciplineConfig& discipline, int pools) {
  analysis::TopologyModel model = describe_pool_topology(discipline);
  (void)pools;

  // The flock layer: the schedd's face toward other pools' matchmakers.
  model.declare_component("flock");

  // What flocking can discover: every way a remote pool stops answering.
  analysis::DetectionDecl negotiate;
  negotiate.component = "flock";
  negotiate.point = "flock.negotiate";
  negotiate.kinds = {ErrorKind::kConnectionRefused, ErrorKind::kConnectionLost,
                     ErrorKind::kConnectionTimedOut,
                     ErrorKind::kHostUnreachable, ErrorKind::kDaemonCrashed};
  model.declare_detection(std::move(negotiate));

  // The boundary contract. Scoped: a finite connection-shaped interface
  // that filters everything else, escaping no lower than network scope —
  // the inter-pool trunk belongs to no single machine. Naive: the same
  // §2.3 leak as everywhere else, now across an administrative boundary.
  analysis::InterfaceDecl forward;
  forward.component = "flock";
  forward.routine = "flock.forward";
  forward.escape_floor = ErrorScope::kNetwork;
  if (discipline.scope_routing) {
    forward.allowed = {ErrorKind::kConnectionRefused,
                       ErrorKind::kConnectionLost,
                       ErrorKind::kConnectionTimedOut,
                       ErrorKind::kHostUnreachable, ErrorKind::kDaemonCrashed};
  } else {
    forward.mode = analysis::InterfaceMode::kLeak;
  }
  model.declare_interface(std::move(forward));

  model.declare_flow("flock.negotiate", "flock.forward");
  model.declare_flow("flock.forward", "schedd.disposition");

  if (discipline.scope_routing) {
    // Cross-pool scope semantics: the flock layer consumes at cluster
    // scope (a remote pool judged as a unit) and network scope (the trunk
    // between pools), and remote-resource conditions that persist widen to
    // cluster — the remote machine is the remote pool's to manage, the
    // remote *pool* is ours.
    model.declare_handler("flock", ErrorScope::kCluster);
    model.declare_handler("flock", ErrorScope::kNetwork);
    model.declare_escalation("flock", ErrorScope::kRemoteResource,
                             ErrorScope::kCluster);
    model.declare_escalation("flock", ErrorScope::kNetwork,
                             ErrorScope::kCluster);
  }

  return model;
}

}  // namespace esg::pool
