// Whole-pool error topology: assembles every component's declarations into
// one TopologyModel for a discipline, wired together the way the runtime
// actually connects them.
//
// The per-component describe_topology() hooks declare what each daemon
// knows in isolation; this file adds the inter-component flows — proxy I/O
// riding the chirp channel to the shadow, the JVM's outcome crossing into
// the starter's report, reports ascending shadow -> schedd -> user — and
// the pool-wide escalation edges. The resulting model is what the
// ScopeVerifier proves P1–P4 over: the scoped discipline verifies clean,
// the naive one exhibits the paper's §2.3 hazards statically.
#pragma once

#include "analysis/topology.hpp"
#include "daemons/config.hpp"

namespace esg::pool {

/// Build the declared error topology of a whole pool running under
/// `discipline` (one matchmaker, one schedd/shadow chain, one
/// startd/starter/jvm chain, chirp I/O between them, and the user at the
/// top as pool-scope manager).
[[nodiscard]] analysis::TopologyModel describe_pool_topology(
    const daemons::DisciplineConfig& discipline);

}  // namespace esg::pool
