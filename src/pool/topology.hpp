// Whole-pool error topology: assembles every component's declarations into
// one TopologyModel for a discipline, wired together the way the runtime
// actually connects them.
//
// The per-component describe_topology() hooks declare what each daemon
// knows in isolation; this file adds the inter-component flows — proxy I/O
// riding the chirp channel to the shadow, the JVM's outcome crossing into
// the starter's report, reports ascending shadow -> schedd -> user — and
// the pool-wide escalation edges. The resulting model is what the
// ScopeVerifier proves P1–P4 over: the scoped discipline verifies clean,
// the naive one exhibits the paper's §2.3 hazards statically.
#pragma once

#include "analysis/topology.hpp"
#include "daemons/config.hpp"

namespace esg::pool {

/// Build the declared error topology of a whole pool running under
/// `discipline` (one matchmaker, one schedd/shadow chain, one
/// startd/starter/jvm chain, chirp I/O between them, and the user at the
/// top as pool-scope manager).
[[nodiscard]] analysis::TopologyModel describe_pool_topology(
    const daemons::DisciplineConfig& discipline);

/// The federated extension: the pool model plus the flock layer's declared
/// contract at the pool boundary. The flock layer detects negotiation and
/// claim failures against remote pools ("flock.negotiate"), forwards the
/// finite set of connection-shaped kinds through "flock.forward" (escape
/// floor *network* — a severed inter-pool trunk is nobody's machine), and
/// — under the scoped discipline — registers as the manager of the
/// cluster and network scopes, with remote failures escalating
/// remote-resource -> cluster (a remote machine is not ours to judge;
/// the remote *pool* is). Under the naive discipline the forward
/// interface leaks, so the §2.3 hazard reappears at the pool boundary and
/// esg-verify finds it statically. The declared contract is per-boundary,
/// not per-peer — `pools` is accepted for CLI symmetry but one boundary
/// declaration covers any federation width.
[[nodiscard]] analysis::TopologyModel describe_federated_topology(
    const daemons::DisciplineConfig& discipline, int pools = 3);

}  // namespace esg::pool
