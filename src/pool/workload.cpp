#include "pool/workload.hpp"

#include "pool/pool.hpp"

namespace esg::pool {

namespace {
constexpr const char* kRemoteInput = "/home/data/input.dat";
}

std::vector<daemons::JobDescription> make_workload(
    const WorkloadOptions& options, Rng& rng) {
  std::vector<daemons::JobDescription> jobs;
  jobs.reserve(static_cast<std::size_t>(options.count));
  for (int i = 0; i < options.count; ++i) {
    const SimTime compute = SimTime::usec(static_cast<std::int64_t>(
        rng.exponential(static_cast<double>(options.mean_compute.as_usec()))));

    jvm::ProgramBuilder builder("Job" + std::to_string(i));
    builder.compute(compute);
    if (rng.chance(options.remote_io_fraction)) {
      builder.open_read(kRemoteInput, 0).read(0, 4096).close_stream(0);
    }
    if (rng.chance(options.big_alloc_fraction)) {
      builder.alloc(options.big_alloc_bytes);
    }
    if (rng.chance(options.remote_write_fraction)) {
      builder.open_write("/home/data/out_" + std::to_string(i), 1)
          .write(1, 1024)
          .close_stream(1);
    }
    if (rng.chance(options.program_error_fraction)) {
      builder.throw_exception(ErrorKind::kArrayIndexOutOfBounds);
    } else if (rng.chance(options.nonzero_exit_fraction)) {
      builder.exit(3);
    }

    daemons::JobDescription job;
    job.owner = "user";
    job.program = builder.build();
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void stage_workload_inputs(Pool& pool) {
  pool.stage_input(kRemoteInput, std::string(64 << 10, 'x'));
}

void stage_workload_inputs(fs::SimFileSystem& submit_fs) {
  (void)submit_fs.mkdirs("/home/data");
  (void)submit_fs.write_file(kRemoteInput, std::string(64 << 10, 'x'));
}

daemons::JobDescription make_hello_job(SimTime compute) {
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("Hello").compute(compute).build();
  return job;
}

std::string ScaleTier::requirements() const {
  return "TARGET.Arch == \"" + arch + "\" && TARGET.OpSys == \"" + opsys +
         "\" && TARGET.HasJava =?= true && TARGET.Memory >= " +
         std::to_string(memory_mb);
}

const std::vector<ScaleTier>& scale_tiers() {
  static const std::vector<ScaleTier> tiers = [] {
    const std::string arches[] = {"INTEL", "SUN4u", "PPC", "ALPHA"};
    const std::string systems[] = {"LINUX", "SOLARIS28", "OSF1"};
    std::vector<ScaleTier> out;
    for (std::size_t a = 0; a < std::size(arches); ++a) {
      for (std::size_t s = 0; s < std::size(systems); ++s) {
        out.push_back(ScaleTier{arches[a], systems[s],
                                static_cast<std::int64_t>(256) << s});
      }
    }
    return out;
  }();
  return tiers;
}

std::vector<MachineSpec> make_scale_machines(int count) {
  const std::vector<ScaleTier>& tiers = scale_tiers();
  std::vector<MachineSpec> machines;
  machines.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const ScaleTier& tier = tiers[static_cast<std::size_t>(i) % tiers.size()];
    MachineSpec spec = MachineSpec::good("exec" + std::to_string(i));
    spec.startd.arch = tier.arch;
    spec.startd.opsys = tier.opsys;
    spec.startd.memory_mb = tier.memory_mb;
    machines.push_back(std::move(spec));
  }
  return machines;
}

std::vector<daemons::JobDescription> make_scale_workload(
    const WorkloadOptions& options, Rng& rng) {
  const std::vector<ScaleTier>& tiers = scale_tiers();
  std::vector<daemons::JobDescription> jobs = make_workload(options, rng);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].requirements = tiers[i % tiers.size()].requirements();
  }
  return jobs;
}

}  // namespace esg::pool
