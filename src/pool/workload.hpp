// Workload generators for the experiments.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "daemons/job.hpp"
#include "fs/simfs.hpp"

namespace esg::pool {

struct MachineSpec;

struct WorkloadOptions {
  int count = 50;
  /// Mean compute time per job (exponentially distributed).
  SimTime mean_compute = SimTime::sec(20);
  /// Fraction of jobs that legitimately throw (program-scope error).
  double program_error_fraction = 0.0;
  /// Fraction of jobs that call System.exit with a nonzero code.
  double nonzero_exit_fraction = 0.0;
  /// Fraction of jobs that read a remote (submit-side) input via the
  /// proxy during execution.
  double remote_io_fraction = 0.0;
  /// Fraction of jobs that write a remote output via the proxy.
  double remote_write_fraction = 0.0;
  /// Fraction of jobs that allocate aggressively (exercises heap limits).
  double big_alloc_fraction = 0.0;
  std::int64_t big_alloc_bytes = 1LL << 30;
};

/// Generate a mixed batch of jobs. Paths under /home/data/... are staged
/// by stage_workload_inputs(). Deterministic for a given rng state.
std::vector<daemons::JobDescription> make_workload(const WorkloadOptions& options,
                                                   Rng& rng);

/// Stage the input files the workload expects onto the submit machine.
void stage_workload_inputs(class Pool& pool);
/// Same, directly onto a submit filesystem (federated topologies build
/// their submit machines without a Pool — see src/flock).
void stage_workload_inputs(fs::SimFileSystem& submit_fs);

/// One trivial always-succeeds job (quickstart and tests).
daemons::JobDescription make_hello_job(SimTime compute = SimTime::sec(1));

// ---- kernel-scale topology (pool_bench --scale) ----
//
// A large real pool is heterogeneous: the cross product of architectures,
// operating systems, and memory sizes partitions the machines into tiers,
// and a job's Requirements pin it to one tier. That heterogeneity is what
// gives the matchmaker's ad index real selectivity to exploit — a
// homogeneous 10k-machine pool would make every machine a candidate for
// every job and measure nothing but symmetric_match throughput.

/// One platform tier: the machine-side identity and the job-side
/// Requirements expression that pins a job to it.
struct ScaleTier {
  std::string arch;
  std::string opsys;
  std::int64_t memory_mb = 512;
  /// `TARGET.Arch == ... && TARGET.OpSys == ... && TARGET.HasJava =?= true
  ///  && TARGET.Memory >= memory_mb` — every conjunct index-extractable.
  [[nodiscard]] std::string requirements() const;
};

/// The fixed 12-tier topology (4 arches × 3 systems, memory by system).
const std::vector<ScaleTier>& scale_tiers();

/// `count` correctly-configured machines named exec0..execN-1,
/// round-robined across scale_tiers().
std::vector<MachineSpec> make_scale_machines(int count);

/// Like make_workload, but job i's Requirements pin it to tier
/// i % scale_tiers().size(), matching make_scale_machines' round-robin.
std::vector<daemons::JobDescription> make_scale_workload(
    const WorkloadOptions& options, Rng& rng);

}  // namespace esg::pool
