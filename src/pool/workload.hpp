// Workload generators for the experiments.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "daemons/job.hpp"
#include "fs/simfs.hpp"

namespace esg::pool {

struct WorkloadOptions {
  int count = 50;
  /// Mean compute time per job (exponentially distributed).
  SimTime mean_compute = SimTime::sec(20);
  /// Fraction of jobs that legitimately throw (program-scope error).
  double program_error_fraction = 0.0;
  /// Fraction of jobs that call System.exit with a nonzero code.
  double nonzero_exit_fraction = 0.0;
  /// Fraction of jobs that read a remote (submit-side) input via the
  /// proxy during execution.
  double remote_io_fraction = 0.0;
  /// Fraction of jobs that write a remote output via the proxy.
  double remote_write_fraction = 0.0;
  /// Fraction of jobs that allocate aggressively (exercises heap limits).
  double big_alloc_fraction = 0.0;
  std::int64_t big_alloc_bytes = 1LL << 30;
};

/// Generate a mixed batch of jobs. Paths under /home/data/... are staged
/// by stage_workload_inputs(). Deterministic for a given rng state.
std::vector<daemons::JobDescription> make_workload(const WorkloadOptions& options,
                                                   Rng& rng);

/// Stage the input files the workload expects onto the submit machine.
void stage_workload_inputs(class Pool& pool);
/// Same, directly onto a submit filesystem (federated topologies build
/// their submit machines without a Pool — see src/flock).
void stage_workload_inputs(fs::SimFileSystem& submit_fs);

/// One trivial always-succeeds job (quickstart and tests).
daemons::JobDescription make_hello_job(SimTime compute = SimTime::sec(1));

}  // namespace esg::pool
