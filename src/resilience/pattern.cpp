#include "resilience/pattern.hpp"

namespace esg::resilience {

std::string_view pattern_name(PatternKind kind) {
  switch (kind) {
    case PatternKind::kRetry:
      return "retry";
    case PatternKind::kRetryElsewhere:
      return "retry-elsewhere";
    case PatternKind::kCheckpointRestart:
      return "checkpoint-restart";
    case PatternKind::kMigrate:
      return "migrate";
    case PatternKind::kReplicate:
      return "replicate";
    case PatternKind::kAvoid:
      return "avoid";
    case PatternKind::kSurface:
      return "surface";
  }
  return "unknown";
}

std::optional<PatternKind> parse_pattern(std::string_view name) {
  for (PatternKind kind : kAllPatterns) {
    if (pattern_name(kind) == name) {
      return kind;
    }
  }
  return std::nullopt;
}

}  // namespace esg::resilience
