// The resilience-pattern catalog (ORNL Resilience Design Patterns,
// specialized to the paper's error-scope taxonomy).
//
// Each pattern names one recovery shape the pool already half-implements
// somewhere ad hoc: blind retry with backoff (schedd reschedule), retry
// with site exclusion, checkpoint-restart (shadow/starter checkpoint
// stream), migration (checkpoint + exclusion), redundancy with voting
// (pool/reliable.hpp submit_redundant + vote_outputs), chronic-host
// avoidance (schedd avoidance list), and honest surfacing (return the
// condition to the user as the job's result). A PolicyTable binds one
// pattern per (error scope × kind); the chaos scorecard measures which
// pattern actually wins under which scope family.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace esg::resilience {

/// One recovery strategy shape from the catalog.
enum class PatternKind {
  kRetry,              ///< reschedule anywhere, exponential backoff
  kRetryElsewhere,     ///< reschedule excluding the failing machine
  kCheckpointRestart,  ///< reschedule, resuming from the last checkpoint
  kMigrate,            ///< checkpoint + reschedule excluding the machine
  kReplicate,          ///< N-way redundancy with output voting
  kAvoid,              ///< quarantine chronically failing machines
  kSurface,            ///< hand the condition to the user, truthfully
};

/// Number of PatternKind enumerators; arrays indexed by
/// static_cast<std::size_t>(kind) use this bound.
inline constexpr std::size_t kNumPatternKinds = 7;

/// All patterns, in catalog order; used by sweeps and the scorecard.
inline constexpr PatternKind kAllPatterns[] = {
    PatternKind::kRetry,   PatternKind::kRetryElsewhere,
    PatternKind::kCheckpointRestart, PatternKind::kMigrate,
    PatternKind::kReplicate, PatternKind::kAvoid,
    PatternKind::kSurface,
};

/// Short stable name ("retry", "checkpoint-restart", ...). These names
/// appear in fault plans, scorecards, and CI gates — pinned, like scope
/// names.
std::string_view pattern_name(PatternKind kind);

/// Parse a name produced by pattern_name(). Returns nullopt on unknown
/// input — fault-plan parsing must reject garbage without asserting.
std::optional<PatternKind> parse_pattern(std::string_view name);

}  // namespace esg::resilience
