// PolicyTable — binds a resilience pattern per (error scope × kind).
//
// Lookup is most-specific-first: an exact (scope, kind) binding beats a
// scope-wide binding beats the table default; a completely unbound site
// falls back to Surface, because when no strategy claims an error the
// only honest disposition is handing it to the user (the paper's last
// line of defense, and the chaos attribution oracle's requirement).
//
// The table is a small value type so DisciplineConfig can carry one per
// pool (or per job via JobDescription overrides upstream) without
// lifetime ceremony.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <utility>

#include "core/kinds.hpp"
#include "core/scope.hpp"
#include "resilience/pattern.hpp"

namespace esg::resilience {

class PolicyTable {
 public:
  /// Bind the fallback pattern for any scope without its own binding.
  PolicyTable& bind_default(PatternKind pattern) {
    default_ = pattern;
    return *this;
  }

  /// Bind every kind at `scope` to `pattern`.
  PolicyTable& bind(ErrorScope scope, PatternKind pattern) {
    by_scope_[static_cast<std::size_t>(scope)] = pattern;
    return *this;
  }

  /// Bind the exact (scope, kind) cell to `pattern`.
  PolicyTable& bind(ErrorScope scope, ErrorKind kind, PatternKind pattern) {
    by_cell_[{static_cast<int>(scope), static_cast<int>(kind)}] = pattern;
    return *this;
  }

  /// Most-specific binding for (scope, kind); Surface when nothing binds.
  [[nodiscard]] PatternKind lookup(ErrorScope scope, ErrorKind kind) const {
    const auto cell =
        by_cell_.find({static_cast<int>(scope), static_cast<int>(kind)});
    if (cell != by_cell_.end()) {
      return cell->second;
    }
    if (const auto& bound = by_scope_[static_cast<std::size_t>(scope)]) {
      return *bound;
    }
    return default_.value_or(PatternKind::kSurface);
  }

  /// True if no binding (default, scope, or cell) has been made — the
  /// config's signal to substitute the classic table.
  [[nodiscard]] bool empty() const {
    if (default_ || !by_cell_.empty()) {
      return false;
    }
    for (const auto& bound : by_scope_) {
      if (bound) {
        return false;
      }
    }
    return true;
  }

  /// True if any binding (or the default) selects `pattern` — used to
  /// light up pattern-specific machinery (avoidance tracker, checkpoint
  /// streaming) only when a policy can actually reach it.
  [[nodiscard]] bool uses(PatternKind pattern) const {
    if (default_ == pattern) {
      return true;
    }
    for (const auto& bound : by_scope_) {
      if (bound == pattern) {
        return true;
      }
    }
    for (const auto& entry : by_cell_) {
      if (entry.second == pattern) {
        return true;
      }
    }
    return false;
  }

  /// The schedd's classic discipline, expressed as a table: program and
  /// job-or-wider scopes surface to the user (complete / unexecutable per
  /// schedd_disposition), everything else retries elsewhere with backoff.
  /// Byte-identical to the pre-catalog hardcoded dispositions.
  [[nodiscard]] static PolicyTable classic() {
    PolicyTable table;
    table.bind(ErrorScope::kProgram, PatternKind::kSurface)
        .bind(ErrorScope::kJob, PatternKind::kSurface)
        .bind(ErrorScope::kCluster, PatternKind::kSurface)
        .bind(ErrorScope::kPool, PatternKind::kSurface)
        .bind_default(PatternKind::kRetry);
    return table;
  }

  /// Every error handled by one pattern — the chaos scorecard's
  /// monoculture cells, which measure each pattern's unassisted behavior
  /// (including how blind-hammer patterns lie about program-scope errors).
  [[nodiscard]] static PolicyTable monoculture(PatternKind pattern) {
    PolicyTable table;
    table.bind_default(pattern);
    return table;
  }

 private:
  std::optional<PatternKind> default_;
  std::array<std::optional<PatternKind>, kNumErrorScopes> by_scope_{};
  std::map<std::pair<int, int>, PatternKind> by_cell_;
};

}  // namespace esg::resilience
