#include "resilience/strategy.hpp"

namespace esg::resilience {

SimTime Strategy::backoff_for(const ErrorSite& site, Rng* jitter) const {
  SimTime backoff = tuning_.base_delay;
  for (int i = 1; i < site.consecutive_failures && backoff < tuning_.max_backoff;
       ++i) {
    backoff = backoff * std::int64_t{2};
  }
  if (backoff > tuning_.max_backoff) {
    backoff = tuning_.max_backoff;
  }
  if (tuning_.jitter && jitter != nullptr) {
    // Deterministic decorrelation: U[0.5, 1.5) of the doubled delay, drawn
    // from the caller's pinned retry-jitter stream. Capped like the base
    // schedule so a jittered delay never exceeds the configured ceiling.
    backoff = backoff * (0.5 + jitter->uniform());
    if (backoff > tuning_.max_backoff) {
      backoff = tuning_.max_backoff;
    }
  }
  return backoff;
}

std::optional<Decision> Strategy::budget_check(const ErrorSite& site) const {
  if (site.attempts >= tuning_.max_attempts) {
    Decision decision;
    decision.pattern = kind();
    decision.action = RecoveryAction::kDeliverUnexecutable;
    decision.budget_exhausted = true;
    decision.detail = "attempt budget exhausted";
    return decision;
  }
  return std::nullopt;
}

Decision Strategy::surface(const ErrorSite& site) const {
  Decision decision;
  decision.pattern = kind();
  if (site.program_result) {
    decision.action = RecoveryAction::kDeliverResult;
    decision.detail = "program-scope error is the job's own result";
    return decision;
  }
  switch (schedd_disposition(site.scope)) {
    case ScheddDisposition::kComplete:
      decision.action = RecoveryAction::kDeliverResult;
      decision.detail = "job-scope condition is the job's own result";
      break;
    case ScheddDisposition::kUnexecutable:
      decision.action = RecoveryAction::kDeliverUnexecutable;
      decision.detail = "job marked unexecutable";
      break;
    case ScheddDisposition::kRetryElsewhere:
      // Surface refuses to recover on the user's behalf: a retryable
      // environment condition is handed back, truthfully, as unexecutable
      // here rather than silently hammered elsewhere.
      decision.action = RecoveryAction::kDeliverUnexecutable;
      decision.detail = "surfaced: condition handed to the user unhandled";
      break;
  }
  return decision;
}

namespace {

class SurfaceStrategy final : public Strategy {
 public:
  using Strategy::Strategy;
  [[nodiscard]] PatternKind kind() const override {
    return PatternKind::kSurface;
  }
  [[nodiscard]] Decision decide(const ErrorSite& site,
                                Rng* /*jitter*/) const override {
    return surface(site);
  }
};

class RetryStrategy final : public Strategy {
 public:
  using Strategy::Strategy;
  [[nodiscard]] PatternKind kind() const override {
    return PatternKind::kRetry;
  }
  [[nodiscard]] Decision decide(const ErrorSite& site,
                                Rng* jitter) const override {
    if (std::optional<Decision> exhausted = budget_check(site)) {
      return *exhausted;
    }
    Decision decision;
    decision.pattern = kind();
    decision.action = RecoveryAction::kReschedule;
    decision.delay = backoff_for(site, jitter);
    decision.detail = "rescheduling elsewhere in " + decision.delay.str();
    return decision;
  }
};

class RetryElsewhereStrategy final : public Strategy {
 public:
  using Strategy::Strategy;
  [[nodiscard]] PatternKind kind() const override {
    return PatternKind::kRetryElsewhere;
  }
  [[nodiscard]] Decision decide(const ErrorSite& site,
                                Rng* jitter) const override {
    if (std::optional<Decision> exhausted = budget_check(site)) {
      return *exhausted;
    }
    Decision decision;
    decision.pattern = kind();
    decision.action = RecoveryAction::kReschedule;
    decision.delay = backoff_for(site, jitter);
    decision.exclude_machine = !site.machine.empty();
    decision.detail = "rescheduling elsewhere in " + decision.delay.str() +
                      " (excluding " + site.machine + ")";
    return decision;
  }
};

class CheckpointRestartStrategy final : public Strategy {
 public:
  using Strategy::Strategy;
  [[nodiscard]] PatternKind kind() const override {
    return PatternKind::kCheckpointRestart;
  }
  [[nodiscard]] Decision decide(const ErrorSite& site,
                                Rng* jitter) const override {
    if (std::optional<Decision> exhausted = budget_check(site)) {
      return *exhausted;
    }
    Decision decision;
    decision.pattern = kind();
    decision.action = RecoveryAction::kReschedule;
    decision.delay = backoff_for(site, jitter);
    decision.detail = "checkpoint-restart in " + decision.delay.str();
    return decision;
  }
};

class MigrateStrategy final : public Strategy {
 public:
  using Strategy::Strategy;
  [[nodiscard]] PatternKind kind() const override {
    return PatternKind::kMigrate;
  }
  [[nodiscard]] Decision decide(const ErrorSite& site,
                                Rng* jitter) const override {
    if (std::optional<Decision> exhausted = budget_check(site)) {
      return *exhausted;
    }
    Decision decision;
    decision.pattern = kind();
    decision.action = RecoveryAction::kReschedule;
    decision.delay = backoff_for(site, jitter);
    decision.exclude_machine = !site.machine.empty();
    decision.detail =
        "migrating with checkpoint in " + decision.delay.str();
    return decision;
  }
};

class AvoidStrategy final : public Strategy {
 public:
  using Strategy::Strategy;
  [[nodiscard]] PatternKind kind() const override {
    return PatternKind::kAvoid;
  }
  [[nodiscard]] Decision decide(const ErrorSite& site,
                                Rng* jitter) const override {
    if (std::optional<Decision> exhausted = budget_check(site)) {
      return *exhausted;
    }
    // The quarantine itself lives in the schedd's chronic-host tracker
    // (note_machine_failure / machine_avoided); the strategy's job is the
    // reschedule that gives the tracker time to build a streak.
    Decision decision;
    decision.pattern = kind();
    decision.action = RecoveryAction::kReschedule;
    decision.delay = backoff_for(site, jitter);
    decision.detail =
        "avoiding chronic host; rescheduling in " + decision.delay.str();
    return decision;
  }
};

class ReplicateStrategy final : public Strategy {
 public:
  using Strategy::Strategy;
  [[nodiscard]] PatternKind kind() const override {
    return PatternKind::kReplicate;
  }
  [[nodiscard]] Decision decide(const ErrorSite& site,
                                Rng* jitter) const override {
    // Redundancy is honest about the program's own conditions: replicas
    // exist to outvote lying environments, not to suppress real results.
    if (site.program_result ||
        schedd_disposition(site.scope) == ScheddDisposition::kComplete) {
      return surface(site);
    }
    if (std::optional<Decision> exhausted = budget_check(site)) {
      return *exhausted;
    }
    Decision decision;
    decision.pattern = kind();
    decision.action = RecoveryAction::kReschedule;
    decision.delay = backoff_for(site, jitter);
    decision.detail = "rescheduling elsewhere in " + decision.delay.str();
    return decision;
  }
};

}  // namespace

StrategyRegistry::StrategyRegistry(Tuning tuning) : tuning_(tuning) {
  strategies_[static_cast<std::size_t>(PatternKind::kRetry)] =
      std::make_unique<RetryStrategy>(tuning);
  strategies_[static_cast<std::size_t>(PatternKind::kRetryElsewhere)] =
      std::make_unique<RetryElsewhereStrategy>(tuning);
  strategies_[static_cast<std::size_t>(PatternKind::kCheckpointRestart)] =
      std::make_unique<CheckpointRestartStrategy>(tuning);
  strategies_[static_cast<std::size_t>(PatternKind::kMigrate)] =
      std::make_unique<MigrateStrategy>(tuning);
  strategies_[static_cast<std::size_t>(PatternKind::kReplicate)] =
      std::make_unique<ReplicateStrategy>(tuning);
  strategies_[static_cast<std::size_t>(PatternKind::kAvoid)] =
      std::make_unique<AvoidStrategy>(tuning);
  strategies_[static_cast<std::size_t>(PatternKind::kSurface)] =
      std::make_unique<SurfaceStrategy>(tuning);
}

}  // namespace esg::resilience
