// Strategy — the pluggable recovery interface the schedd consults at
// every error disposition.
//
// A Strategy turns an ErrorSite (where and how an attempt went wrong,
// plus budget state) into a Decision (deliver the result, mark the job
// unexecutable, or reschedule with a delay and optional site exclusion).
// The concrete strategies reproduce the catalog in pattern.hpp; the
// classic schedd behavior is exactly {kProgram/kJob/kCluster/kPool →
// Surface, default → Retry}, so porting the ad-hoc reschedule loop onto
// this interface is byte-identical under the classic PolicyTable.
//
// Determinism: strategies are pure — all state lives in the ErrorSite
// (attempt counts come from the schedd's JobRecord) and the optional
// jitter stream is a pinned rng_streams fork owned by the caller, so a
// Decision replays identically at any sweep thread count.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "common/simtime.hpp"
#include "core/kinds.hpp"
#include "core/scope.hpp"
#include "resilience/pattern.hpp"

namespace esg::resilience {

/// Per-strategy budgets and backoff shape, defaulted to the schedd's
/// classic discipline knobs.
struct Tuning {
  int max_attempts = 20;                     ///< total attempt budget per job
  SimTime base_delay = SimTime::sec(2);      ///< first reschedule delay
  SimTime max_backoff = SimTime::minutes(5); ///< backoff doubling cap
  bool jitter = false;                       ///< multiply backoff by U[0.5,1.5)
  int replicas = 3;                          ///< Replicate{N}: copies per job
};

/// Everything a strategy may condition on: the error's (scope, kind),
/// which job/machine it struck, and the job's budget state.
struct ErrorSite {
  ErrorScope scope = ErrorScope::kJob;
  ErrorKind kind = ErrorKind::kIoError;
  std::uint64_t job = 0;
  std::string machine;        ///< execution machine of the failed attempt
  int attempts = 0;           ///< attempts recorded so far (incl. this one)
  int consecutive_failures = 1;  ///< trailing environment failures
  bool program_result = false;   ///< the attempt produced the program's own
                                 ///< result (an error *of* the job, not its
                                 ///< environment)
};

/// What the schedd should do with the job after the strategy decides.
enum class RecoveryAction {
  kDeliverResult,        ///< complete the job; the condition is its result
  kDeliverUnexecutable,  ///< return the job to the user as unexecutable
  kReschedule,           ///< put the job back in the queue after `delay`
};

/// A strategy's verdict for one error disposition.
struct Decision {
  PatternKind pattern = PatternKind::kSurface;
  RecoveryAction action = RecoveryAction::kDeliverResult;
  SimTime delay = SimTime::zero();  ///< reschedule backoff (kReschedule only)
  bool exclude_machine = false;     ///< never match this job there again
  bool budget_exhausted = false;    ///< attempt budget ran out
  std::string detail;               ///< human-readable span annotation
};

/// Abstract recovery strategy. Concrete catalog entries live in
/// strategy.cpp behind StrategyRegistry.
class Strategy {
 public:
  explicit Strategy(Tuning tuning) : tuning_(tuning) {}
  virtual ~Strategy() = default;

  [[nodiscard]] virtual PatternKind kind() const = 0;
  [[nodiscard]] std::string_view name() const { return pattern_name(kind()); }
  [[nodiscard]] const Tuning& tuning() const { return tuning_; }

  /// Decide what to do about `site`. `jitter` may be null (no jitter
  /// stream configured); it is consumed only when tuning().jitter is set,
  /// so legacy pools draw nothing.
  [[nodiscard]] virtual Decision decide(const ErrorSite& site,
                                        Rng* jitter) const = 0;

 protected:
  /// The classic schedd doubling schedule: base_delay doubled once per
  /// consecutive failure beyond the first, capped at max_backoff; with
  /// jitter enabled, scaled by a deterministic U[0.5, 1.5) factor drawn
  /// from the pinned retry-jitter stream.
  [[nodiscard]] SimTime backoff_for(const ErrorSite& site, Rng* jitter) const;

  /// Budget gate shared by every rescheduling strategy: once the attempt
  /// budget is spent the only honest move left is returning the job.
  [[nodiscard]] std::optional<Decision> budget_check(
      const ErrorSite& site) const;

  /// Surface semantics, reused by strategies that refuse to lie about
  /// program-scope conditions.
  [[nodiscard]] Decision surface(const ErrorSite& site) const;

  Tuning tuning_;
};

/// One constructed instance of each catalog strategy, sharing a Tuning.
/// The schedd owns one registry; the policy table picks which entry
/// handles a given (scope × kind).
class StrategyRegistry {
 public:
  explicit StrategyRegistry(Tuning tuning = {});

  [[nodiscard]] const Strategy& at(PatternKind kind) const {
    return *strategies_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] const Tuning& tuning() const { return tuning_; }

 private:
  Tuning tuning_;
  std::array<std::unique_ptr<Strategy>, kNumPatternKinds> strategies_;
};

}  // namespace esg::resilience
