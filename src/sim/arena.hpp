// Arena storage for simulation callables.
//
// Every event on the engine queue used to carry a std::function, which
// heap-allocates for any capture list larger than the small-buffer
// optimisation (two pointers on libstdc++) — at million-job scale that is
// one malloc/free pair per simulated event. CallableArena replaces the
// general heap with size-class freelists carved from 64 KiB slabs: an
// allocation is a pop, a deallocation is a push, and the slabs themselves
// are returned to the OS only when the arena dies. Task is the matching
// type-erased callable: a block in the arena plus a static ops table,
// movable (the *handle* moves; the callable never does) and exactly three
// words wide.
//
// Neither type is thread-safe; both belong to exactly one Engine, which is
// single-threaded by design.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace esg::sim {

class CallableArena {
 public:
  /// Every size class is a multiple of this, so freelist nodes stay
  /// suitably aligned for any callable with fundamental alignment.
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  CallableArena() = default;
  CallableArena(const CallableArena&) = delete;
  CallableArena& operator=(const CallableArena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    const int cls = class_for(bytes, align);
    if (cls < 0) {
      ++oversize_;
      return ::operator new(bytes, std::align_val_t(align));
    }
    if (free_[cls] == nullptr) refill(cls);
    FreeNode* node = free_[cls];
    free_[cls] = node->next;
    ++live_;
    return node;
  }

  void deallocate(void* p, std::size_t bytes, std::size_t align) noexcept {
    const int cls = class_for(bytes, align);
    if (cls < 0) {
      ::operator delete(p, std::align_val_t(align));
      return;
    }
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_[cls];
    free_[cls] = node;
    --live_;
  }

  /// Blocks currently handed out (excluding oversize fallbacks).
  [[nodiscard]] std::size_t live_blocks() const { return live_; }
  /// Total slab memory retained, in bytes.
  [[nodiscard]] std::size_t slab_bytes() const {
    return slabs_.size() * kSlabBytes;
  }
  /// Callables too big (or too aligned) for any size class — served by the
  /// general heap. A hot loop showing these wants a bigger top class.
  [[nodiscard]] std::uint64_t oversize_allocs() const { return oversize_; }

 private:
  static constexpr std::size_t kClassSizes[] = {64, 128, 256, 512};
  static constexpr int kClasses = 4;
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  struct FreeNode {
    FreeNode* next;
  };

  static int class_for(std::size_t bytes, std::size_t align) {
    if (align > kAlign) return -1;
    for (int cls = 0; cls < kClasses; ++cls) {
      if (bytes <= kClassSizes[cls]) return cls;
    }
    return -1;
  }

  void refill(int cls) {
    slabs_.push_back(std::make_unique<std::byte[]>(kSlabBytes));
    std::byte* base = slabs_.back().get();
    const std::size_t size = kClassSizes[cls];
    for (std::size_t off = 0; off + size <= kSlabBytes; off += size) {
      auto* node = reinterpret_cast<FreeNode*>(base + off);
      node->next = free_[cls];
      free_[cls] = node;
    }
  }

  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  FreeNode* free_[kClasses] = {};
  std::size_t live_ = 0;
  std::uint64_t oversize_ = 0;
};

/// A move-only `void()` callable stored in a CallableArena. Tasks must not
/// outlive their arena (the Engine owns both, with the arena declared
/// first so it is destroyed last).
class Task {
 public:
  Task() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, Task>>>
  Task(CallableArena& arena, F&& f) : arena_(&arena) {
    using Fn = std::decay_t<F>;
    block_ = arena.allocate(sizeof(Fn), alignof(Fn));
    ::new (block_) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::value;
  }

  Task(Task&& other) noexcept
      : block_(other.block_), ops_(other.ops_), arena_(other.arena_) {
    other.block_ = nullptr;
  }

  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      reset();
      block_ = other.block_;
      ops_ = other.ops_;
      arena_ = other.arena_;
      other.block_ = nullptr;
    }
    return *this;
  }

  ~Task() { reset(); }

  void operator()() { ops_->invoke(block_); }
  explicit operator bool() const { return block_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);
    std::uint32_t size;
    std::uint32_t align;
  };

  template <typename Fn>
  struct OpsFor {
    static const Ops value;
  };

  void reset() {
    if (block_ == nullptr) return;
    ops_->destroy(block_);
    arena_->deallocate(block_, ops_->size, ops_->align);
    block_ = nullptr;
  }

  void* block_ = nullptr;
  const Ops* ops_ = nullptr;
  CallableArena* arena_ = nullptr;
};

template <typename Fn>
const Task::Ops Task::OpsFor<Fn>::value = {
    [](void* p) { (*static_cast<Fn*>(p))(); },
    [](void* p) { static_cast<Fn*>(p)->~Fn(); },
    static_cast<std::uint32_t>(sizeof(Fn)),
    static_cast<std::uint32_t>(alignof(Fn)),
};

}  // namespace esg::sim
