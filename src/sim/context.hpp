// SimContext: all per-simulation runtime state in one owned bundle.
//
// Historically the log sink, the error-propagation flight recorder, the
// principle-audit ledger, the trace-enabled flag, and the id generators
// were process-wide singletons, which meant exactly one simulation could
// run per process and Monte Carlo sweeps had to execute serially. A
// SimContext owns one instance of each, the Engine owns the SimContext,
// and every Actor (and every non-actor component holding an Engine&) binds
// its Logger / TraceSink / audit references through it. Two Pools in one
// process — or eight sweep workers on eight threads — therefore share no
// mutable state at all, and each run's journal, audit counters, and id
// sequences are byte-identical to what a serial run produces.
//
// The old `LogSink::instance()` / `FlightRecorder::global()` /
// `PrincipleAudit::global()` entry points survive as deprecated compat
// shims for code running outside a simulation (tools, ad-hoc examples);
// esg-lint's lint/global-singleton rule rejects new callers in src/.
#pragma once

#include <string>

#include "common/ids.hpp"
#include "common/log.hpp"
#include "core/audit.hpp"
#include "obs/trace.hpp"

namespace esg::sim {

class SimContext {
 public:
  SimContext() = default;

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  [[nodiscard]] LogSink& log_sink() { return log_sink_; }
  [[nodiscard]] obs::FlightRecorder& recorder() { return recorder_; }
  [[nodiscard]] PrincipleAudit& audit() { return audit_; }
  [[nodiscard]] IdGenerators& ids() { return ids_; }

  [[nodiscard]] const obs::FlightRecorder& recorder() const {
    return recorder_;
  }
  [[nodiscard]] const PrincipleAudit& audit() const { return audit_; }

  /// Convenience factories for component-bound handles.
  [[nodiscard]] Logger logger(std::string component) {
    return Logger(std::move(component), &log_sink_);
  }
  [[nodiscard]] obs::TraceSink trace(std::string component) {
    return obs::TraceSink(std::move(component), &recorder_);
  }

 private:
  LogSink log_sink_;
  obs::FlightRecorder recorder_;
  PrincipleAudit audit_;
  IdGenerators ids_;
};

}  // namespace esg::sim
