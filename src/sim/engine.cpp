#include "sim/engine.hpp"

#include <cassert>
#include <utility>

namespace esg::sim {

Engine::Engine(std::uint64_t seed) : rng_(seed) {
  // Bind the context's clocks to this engine so log lines and trace
  // events carry simulated time without any global hookup.
  context_.log_sink().set_clock([this] { return now_; });
  context_.recorder().set_clock([this] { return now_; });
}

std::uint32_t Engine::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].cancelled = false;
    return slot;
  }
  slots_.push_back(Slot{});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Engine::release_slot(std::uint32_t slot) {
  // Bumping the generation invalidates every outstanding handle to the
  // event that just left the queue; the slot is then safe to reuse.
  ++slots_[slot].generation;
  slots_[slot].cancelled = false;
  free_slots_.push_back(slot);
}

bool Engine::pop_and_run(SimTime limit) {
  while (!queue_.empty()) {
    if (queue_.front().when > limit) return false;
    std::pop_heap(queue_.begin(), queue_.end(), EventAfter{});
    Event ev = std::move(queue_.back());
    queue_.pop_back();
    const bool live = slot_live(ev.slot, ev.generation);
    release_slot(ev.slot);
    if (!live) continue;
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t Engine::run(SimTime limit) {
  std::uint64_t count = 0;
  const std::uint64_t start = executed_;
  while (pop_and_run(limit)) {
    ++count;
    if (event_cap_ != 0 && executed_ - start >= event_cap_) break;
  }
  // Advance the clock to the limit when asked to run a bounded window,
  // so repeated bounded runs see monotone time.
  if (limit != SimTime::max() && now_ < limit) now_ = limit;
  return count;
}

bool Engine::run_until(const std::function<bool()>& predicate, SimTime limit) {
  if (predicate()) return true;
  const std::uint64_t start = executed_;
  while (pop_and_run(limit)) {
    if (predicate()) return true;
    if (event_cap_ != 0 && executed_ - start >= event_cap_) break;
  }
  return predicate();
}

bool Engine::step(SimTime limit) { return pop_and_run(limit); }

}  // namespace esg::sim
