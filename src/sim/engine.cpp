#include "sim/engine.hpp"

#include <cassert>
#include <memory>

namespace esg::sim {

Engine::Engine(std::uint64_t seed) : rng_(seed) {}

TimerHandle Engine::schedule(SimTime delay, std::function<void()> fn) {
  assert(delay >= SimTime::zero());
  return schedule_at(now_ + delay, std::move(fn));
}

TimerHandle Engine::schedule_at(SimTime when, std::function<void()> fn) {
  assert(when >= now_);
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, seq_++, std::move(fn), cancelled});
  return TimerHandle(std::move(cancelled));
}

bool Engine::pop_and_run(SimTime limit) {
  while (!queue_.empty()) {
    if (queue_.top().when > limit) return false;
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (*ev.cancelled) continue;
    now_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t Engine::run(SimTime limit) {
  std::uint64_t count = 0;
  const std::uint64_t start = executed_;
  while (pop_and_run(limit)) {
    ++count;
    if (event_cap_ != 0 && executed_ - start >= event_cap_) break;
  }
  // Advance the clock to the limit when asked to run a bounded window,
  // so repeated bounded runs see monotone time.
  if (limit != SimTime::max() && now_ < limit) now_ = limit;
  return count;
}

bool Engine::run_until(const std::function<bool()>& predicate, SimTime limit) {
  if (predicate()) return true;
  const std::uint64_t start = executed_;
  while (pop_and_run(limit)) {
    if (predicate()) return true;
    if (event_cap_ != 0 && executed_ - start >= event_cap_) break;
  }
  return predicate();
}

bool Engine::step(SimTime limit) { return pop_and_run(limit); }

}  // namespace esg::sim
