// Deterministic discrete-event simulation engine.
//
// One Engine drives the whole grid: every daemon, network delivery, and
// timer is an event on one priority queue ordered by (time, sequence), so
// a given seed replays the exact same execution. The engine is single
// threaded on purpose — determinism is worth more than parallel speedup for
// studying error propagation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/simtime.hpp"
#include "obs/trace.hpp"

namespace esg::sim {

/// Handle to a scheduled event, usable to cancel it.
class TimerHandle {
 public:
  TimerHandle() = default;

  [[nodiscard]] bool valid() const { return cancel_ != nullptr && *cancel_ == false; }

  /// Cancel the event if it has not fired yet. Safe to call repeatedly.
  void cancel() {
    if (cancel_) *cancel_ = true;
  }

 private:
  friend class Engine;
  explicit TimerHandle(std::shared_ptr<bool> cancel)
      : cancel_(std::move(cancel)) {}
  std::shared_ptr<bool> cancel_;
};

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 42);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Schedule `fn` to run after `delay` (>= 0). Returns a cancellable
  /// handle. Events at equal times run in scheduling order.
  TimerHandle schedule(SimTime delay, std::function<void()> fn);
  TimerHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Run until the queue is empty or `limit` is reached; returns the
  /// number of events executed.
  std::uint64_t run(SimTime limit = SimTime::max());

  /// Run until `predicate` becomes true (checked after every event), the
  /// queue empties, or `limit` passes. Returns true if the predicate held.
  bool run_until(const std::function<bool()>& predicate,
                 SimTime limit = SimTime::max());

  /// Execute exactly one event if any is pending before `limit`.
  bool step(SimTime limit = SimTime::max());

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Hard cap on events per run() call — a runaway-loop backstop. 0 means
  /// unlimited.
  void set_event_cap(std::uint64_t cap) { event_cap_ = cap; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  bool pop_and_run(SimTime limit);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_{};
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t event_cap_ = 0;
  Rng rng_;
};

/// Base class for simulation actors (daemons). Binds a name, the engine,
/// a logger, a trace sink for the error flight recorder, and a forked RNG
/// stream.
class Actor {
 public:
  Actor(Engine& engine, std::string name)
      : engine_(&engine),
        name_(std::move(name)),
        log_(name_),
        trace_(name_),
        rng_(engine.rng().fork(name_)) {}
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Engine& engine() const { return *engine_; }
  [[nodiscard]] SimTime now() const { return engine_->now(); }

 protected:
  [[nodiscard]] const Logger& log() const { return log_; }
  [[nodiscard]] const obs::TraceSink& trace() const { return trace_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  TimerHandle after(SimTime delay, std::function<void()> fn) {
    return engine_->schedule(delay, std::move(fn));
  }

 private:
  Engine* engine_;
  std::string name_;
  Logger log_;
  obs::TraceSink trace_;
  Rng rng_;
};

}  // namespace esg::sim
