// Deterministic discrete-event simulation engine.
//
// One Engine drives one simulated grid: every daemon, network delivery,
// and timer is an event on one priority queue ordered by (time, sequence),
// so a given seed replays the exact same execution. Each engine is single
// threaded *inside* — determinism is worth more than parallel speedup for
// studying error propagation — but engines are fully isolated from one
// another: every Engine owns a SimContext (log sink, flight recorder,
// principle audit, id generators), so many engines can run concurrently on
// different threads (see pool/sweep.hpp) without sharing any mutable
// state.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/simtime.hpp"
#include "obs/trace.hpp"
#include "sim/arena.hpp"
#include "sim/context.hpp"

namespace esg::sim {

class Engine;

/// Handle to a scheduled event, usable to cancel it. Implemented as a
/// (slot, generation) pair into the engine's slot table: no allocation per
/// event, and a handle whose event has fired or been cancelled is simply
/// stale (its generation no longer matches). Handles must not outlive
/// their engine.
class TimerHandle {
 public:
  TimerHandle() = default;

  /// True while the event is still pending (scheduled, not yet fired or
  /// cancelled).
  [[nodiscard]] bool valid() const;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly,
  /// and on handles whose event already ran.
  void cancel();

 private:
  friend class Engine;
  TimerHandle(Engine* engine, std::uint32_t slot, std::uint32_t generation)
      : engine_(engine), slot_(slot), generation_(generation) {}

  Engine* engine_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class Engine {
 public:
  explicit Engine(std::uint64_t seed = 42);

  // An engine's context hands out pointers into the engine (clock
  // closures, bound sinks), so engines are pinned in memory.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// The per-simulation runtime state: log sink, flight recorder,
  /// principle audit, id generators. Everything constructed against this
  /// engine binds through here instead of process-wide singletons.
  [[nodiscard]] SimContext& context() { return context_; }
  [[nodiscard]] const SimContext& context() const { return context_; }

  /// Schedule `fn` to run after `delay` (>= 0). Returns a cancellable
  /// handle. Events at equal times run in scheduling order. The callable
  /// is stored in the engine's arena, not the general heap — any capture
  /// list up to the top size class costs a freelist pop.
  template <typename Fn>
  TimerHandle schedule(SimTime delay, Fn&& fn) {
    assert(delay >= SimTime::zero());
    return schedule_at(now_ + delay, std::forward<Fn>(fn));
  }
  template <typename Fn>
  TimerHandle schedule_at(SimTime when, Fn&& fn) {
    assert(when >= now_);
    const std::uint32_t slot = acquire_slot();
    const std::uint32_t generation = slots_[slot].generation;
    queue_.push_back(Event{when, seq_++, Task(arena_, std::forward<Fn>(fn)),
                           slot, generation});
    std::push_heap(queue_.begin(), queue_.end(), EventAfter{});
    return TimerHandle(this, slot, generation);
  }

  /// Run until the queue is empty or `limit` is reached; returns the
  /// number of events executed.
  std::uint64_t run(SimTime limit = SimTime::max());

  /// Run until `predicate` becomes true (checked after every event), the
  /// queue empties, or `limit` passes. Returns true if the predicate held.
  bool run_until(const std::function<bool()>& predicate,
                 SimTime limit = SimTime::max());

  /// Execute exactly one event if any is pending before `limit`.
  bool step(SimTime limit = SimTime::max());

  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Hard cap on events per run() call — a runaway-loop backstop. 0 means
  /// unlimited.
  void set_event_cap(std::uint64_t cap) { event_cap_ = cap; }

  /// The arena backing every queued callable (and available to subsystems
  /// that batch per-engine work, e.g. the network fabric).
  [[nodiscard]] CallableArena& arena() { return arena_; }

 private:
  friend class TimerHandle;

  struct Event {
    SimTime when;
    std::uint64_t seq;
    Task fn;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  /// Max-heap comparator for std::push_heap/pop_heap over queue_: "after"
  /// ordering makes the vector front the earliest (time, seq) event.
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// One entry per in-flight event. `generation` advances when the event
  /// leaves the queue (fired or reaped after cancellation), invalidating
  /// outstanding handles; the slot then returns to the freelist.
  struct Slot {
    std::uint32_t generation = 0;
    bool cancelled = false;
  };

  [[nodiscard]] bool slot_live(std::uint32_t slot,
                               std::uint32_t generation) const {
    return slot < slots_.size() && slots_[slot].generation == generation &&
           !slots_[slot].cancelled;
  }
  void cancel_slot(std::uint32_t slot, std::uint32_t generation) {
    if (slot < slots_.size() && slots_[slot].generation == generation) {
      slots_[slot].cancelled = true;
    }
  }
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  bool pop_and_run(SimTime limit);

  SimContext context_;
  /// Declared before queue_: queued Tasks release their blocks into the
  /// arena on destruction, so the arena must outlive them.
  CallableArena arena_;
  /// Binary heap (push_heap/pop_heap over EventAfter) — a priority_queue
  /// without the const-top dance, so events move out cleanly.
  std::vector<Event> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  SimTime now_{};
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t event_cap_ = 0;
  Rng rng_;
};

inline bool TimerHandle::valid() const {
  return engine_ != nullptr && engine_->slot_live(slot_, generation_);
}

inline void TimerHandle::cancel() {
  if (engine_ != nullptr) engine_->cancel_slot(slot_, generation_);
}

/// Base class for simulation actors (daemons). Binds a name, the engine,
/// a logger and a trace sink (both bound to the engine's context), and a
/// forked RNG stream.
class Actor {
 public:
  Actor(Engine& engine, std::string name)
      : engine_(&engine),
        name_(std::move(name)),
        log_(engine.context().logger(name_)),
        trace_(engine.context().trace(name_)),
        rng_(engine.rng().fork(name_)) {}
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Engine& engine() const { return *engine_; }
  [[nodiscard]] SimTime now() const { return engine_->now(); }

 protected:
  [[nodiscard]] const Logger& log() const { return log_; }
  [[nodiscard]] const obs::TraceSink& trace() const { return trace_; }
  /// Rebind the trace sink to a daemon-qualified component name
  /// ("schedd@submit0" instead of the bare host the Actor is named by).
  /// Journal consumers that localize faults (obs/blame) key spans by
  /// (daemon, machine), so a daemon whose spans would otherwise carry only
  /// its host name calls this in its constructor. Logger and RNG stream
  /// stay bound to the plain Actor name — replay determinism is untouched.
  void rebind_trace(std::string component) {
    trace_ = engine_->context().trace(std::move(component));
  }
  [[nodiscard]] SimContext& context() const { return engine_->context(); }
  [[nodiscard]] Rng& rng() { return rng_; }
  template <typename Fn>
  TimerHandle after(SimTime delay, Fn&& fn) {
    return engine_->schedule(delay, std::forward<Fn>(fn));
  }

 private:
  Engine* engine_;
  std::string name_;
  Logger log_;
  obs::TraceSink trace_;
  Rng rng_;
};

}  // namespace esg::sim
