#include "sim/metrics.hpp"

#include <cmath>
#include <sstream>

namespace esg::sim {

double Histogram::sum() const {
  double total = 0;
  for (double v : samples_) total += v;
  return total;
}

double Histogram::mean() const {
  return samples_.empty() ? 0 : sum() / static_cast<double>(samples_.size());
}

void Histogram::ensure_sorted() const {
  if (sorted_valid_ && sorted_.size() == samples_.size()) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Histogram::min() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return sorted_.front();
}

double Histogram::max() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return sorted_.back();
}

double Histogram::quantile(double q) const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1 - frac) + sorted_[hi] * frac;
}

std::int64_t MetricsRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

std::string MetricsRegistry::str() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " " << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << name << " " << g.value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " count=" << h.count() << " mean=" << h.mean()
       << " p50=" << h.quantile(0.5) << " p99=" << h.quantile(0.99) << "\n";
  }
  return os.str();
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; anything else (dots,
/// dashes, slashes in our registry names) becomes '_'.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::prometheus_str() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    const std::string pn = prometheus_name(name);
    os << "# TYPE " << pn << " counter\n";
    os << pn << " " << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = prometheus_name(name);
    os << "# TYPE " << pn << " gauge\n";
    os << pn << " " << g.value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pn = prometheus_name(name);
    os << "# TYPE " << pn << " summary\n";
    for (double q : {0.5, 0.9, 0.99}) {
      os << pn << "{quantile=\"" << q << "\"} " << h.quantile(q) << "\n";
    }
    os << pn << "_sum " << h.sum() << "\n";
    os << pn << "_count " << h.count() << "\n";
  }
  return os.str();
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace esg::sim
