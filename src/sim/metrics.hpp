// Metrics: counters, gauges, and histograms for the experiment harness.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace esg::sim {

class Counter {
 public:
  void add(std::int64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::int64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Reservoir-free histogram: stores all samples (simulations are small
/// enough) and computes order statistics on demand.
///
/// Empty-histogram contract: with no samples, `sum()`, `mean()`, `min()`,
/// `max()`, and `quantile()` all return exactly 0 — never NaN, never a
/// sentinel like +/-infinity. Callers that must distinguish "no data" from
/// "data that averages to zero" check `empty()` first.
class Histogram {
 public:
  void observe(double v) { samples_.push_back(v); }
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  /// 0 with no samples.
  [[nodiscard]] double sum() const;
  /// 0 with no samples (not NaN: no 0/0 division is performed).
  [[nodiscard]] double mean() const;
  /// 0 with no samples (not +infinity).
  [[nodiscard]] double min() const;
  /// 0 with no samples (not -infinity).
  [[nodiscard]] double max() const;
  /// q in [0, 1], clamped; returns 0 with no samples.
  [[nodiscard]] double quantile(double q) const;
  void reset() { samples_.clear(); }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  void ensure_sorted() const;
};

/// Named metric registry; each Pool owns one.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  [[nodiscard]] std::int64_t counter_value(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, Counter>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Render all metrics as "name value" lines, sorted by name.
  [[nodiscard]] std::string str() const;

  /// Prometheus text exposition format: counters as counters, gauges as
  /// gauges, histograms as <name>_count/_sum plus quantile gauges. Merges
  /// cleanly with obs::to_prometheus (pass this string as its `merge`).
  [[nodiscard]] std::string prometheus_str() const;

  void reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace esg::sim
