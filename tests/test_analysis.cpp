// Tests for the static error-scope verifier: the TopologyModel declaration
// language, the ScopeVerifier's P1–P4 proofs over the whole-pool model, and
// the SARIF writer both static layers emit through.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/diff.hpp"
#include "analysis/sarif.hpp"
#include "analysis/topology.hpp"
#include "analysis/verify.hpp"
#include "daemons/config.hpp"
#include "pool/topology.hpp"

namespace esg::analysis {
namespace {

using daemons::DisciplineConfig;

bool chain_mentions(const Finding& finding, const std::string& needle) {
  return std::any_of(finding.chain.begin(), finding.chain.end(),
                     [&](const std::string& link) {
                       return link.find(needle) != std::string::npos;
                     });
}

const Finding* first_with_rule(const AnalysisReport& report,
                               const std::string& rule) {
  for (const Finding& f : report.findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

// ---- TopologyModel ----

TEST(TopologyModel, HandlerAtOrAboveFindsNearestEnclosing) {
  TopologyModel model;
  model.declare_handler("jvm", ErrorScope::kVirtualMachine);
  model.declare_handler("user", ErrorScope::kPool);

  // Exact scope wins.
  auto vm = model.handler_at_or_above(ErrorScope::kVirtualMachine);
  ASSERT_TRUE(vm.has_value());
  EXPECT_EQ(vm->component, "jvm");

  // A scope with no handler of its own resolves to the nearest enclosing
  // one, never a narrower one.
  auto net = model.handler_at_or_above(ErrorScope::kNetwork);
  ASSERT_TRUE(net.has_value());
  EXPECT_EQ(net->component, "user");
  EXPECT_EQ(net->scope, ErrorScope::kPool);

  // Nothing above pool: widest scope covered means everything is.
  auto fn = model.handler_at_or_above(ErrorScope::kFunction);
  ASSERT_TRUE(fn.has_value());
  EXPECT_EQ(fn->component, "jvm");
}

TEST(TopologyModel, ReRegistrationReplacesHandlerForScope) {
  TopologyModel model;
  model.declare_handler("schedd-old", ErrorScope::kJob);
  model.declare_handler("schedd-new", ErrorScope::kJob);
  ASSERT_EQ(model.handlers().size(), 1u);
  EXPECT_EQ(model.handlers()[0].component, "schedd-new");
}

TEST(TopologyModel, UnregisterRecordsWindowAndOpensHole) {
  TopologyModel model;
  model.declare_handler("user", ErrorScope::kPool);
  model.unregister(ErrorScope::kPool);
  EXPECT_FALSE(model.handler_at_or_above(ErrorScope::kJob).has_value());
  ASSERT_EQ(model.unregistered().size(), 1u);
  EXPECT_EQ(model.unregistered()[0].component, "user");
  EXPECT_EQ(model.unregistered()[0].scope, ErrorScope::kPool);
}

TEST(TopologyModel, EscalationClosureIsTransitiveAndMonotone) {
  TopologyModel model;
  model.declare_escalation("e", ErrorScope::kNetwork,
                           ErrorScope::kRemoteResource);
  model.declare_escalation("e", ErrorScope::kRemoteResource,
                           ErrorScope::kCluster);
  // A narrowing edge must be ignored, exactly as ScopeEscalator ignores it.
  model.declare_escalation("e", ErrorScope::kCluster, ErrorScope::kFile);

  const std::vector<ErrorScope> closure =
      model.escalation_closure(ErrorScope::kNetwork);
  EXPECT_NE(std::find(closure.begin(), closure.end(), ErrorScope::kNetwork),
            closure.end());
  EXPECT_NE(
      std::find(closure.begin(), closure.end(), ErrorScope::kRemoteResource),
      closure.end());
  EXPECT_NE(std::find(closure.begin(), closure.end(), ErrorScope::kCluster),
            closure.end());
  EXPECT_EQ(std::find(closure.begin(), closure.end(), ErrorScope::kFile),
            closure.end());
}

// ---- ScopeVerifier over the whole-pool model ----

TEST(ScopeVerifier, ScopedPoolTopologyVerifiesClean) {
  const TopologyModel model =
      pool::describe_pool_topology(DisciplineConfig::scoped());
  const AnalysisReport report = ScopeVerifier().verify(model);
  EXPECT_TRUE(report.ok()) << report.str();
  EXPECT_GT(report.detections_checked, 0u);
  EXPECT_GT(report.interfaces_checked, 0u);
  EXPECT_GT(report.paths_walked, 0u);
}

TEST(ScopeVerifier, NaiveDisciplineExhibitsLaunderingAtStarterBoundary) {
  const TopologyModel model =
      pool::describe_pool_topology(DisciplineConfig::naive());
  const AnalysisReport report = ScopeVerifier().verify(model);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Principle::kP1));

  // The §2.3 hazard: the bare starter's report boundary destroys the
  // identity of the explicit JVM errors flowing into it. The finding must
  // carry the declaration chain that exhibits the leak.
  const Finding* laundering = first_with_rule(report, "esv/p1-laundering");
  ASSERT_NE(laundering, nullptr);
  bool starter_chain = false;
  for (const Finding& f : report.findings) {
    if (f.rule == "esv/p1-laundering" && chain_mentions(f, "starter.report")) {
      starter_chain = true;
      EXPECT_FALSE(f.chain.empty());
      break;
    }
  }
  EXPECT_TRUE(starter_chain)
      << "no laundering finding carries the starter.report boundary";
}

TEST(ScopeVerifier, GenericInterfaceViolatesFiniteness) {
  const TopologyModel model =
      pool::describe_pool_topology(DisciplineConfig::naive());
  const AnalysisReport report = ScopeVerifier().verify(model);
  EXPECT_TRUE(report.has(Principle::kP4));

  const Finding* catch_all = first_with_rule(report, "esv/p4-catch-all");
  ASSERT_NE(catch_all, nullptr);
  // The generic java.io.IOException-shaped interface is the offender.
  EXPECT_NE(catch_all->message.find("JavaIo.IOException"), std::string::npos)
      << catch_all->str();
}

TEST(ScopeVerifier, UnregisteredPoolHandlerSeedsP3HoleWithWindow) {
  TopologyModel model =
      pool::describe_pool_topology(DisciplineConfig::scoped());
  model.unregister(ErrorScope::kPool);

  const AnalysisReport report = ScopeVerifier().verify(model);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has(Principle::kP3));

  const Finding* hole = first_with_rule(report, "esv/p3-routing-hole");
  ASSERT_NE(hole, nullptr);
  // The finding names the window: the restarted daemon whose unregister
  // opened the hole, so the report reads as a diagnosis, not a symptom.
  EXPECT_TRUE(chain_mentions(*hole, "unregistered")) << hole->str();
  EXPECT_TRUE(chain_mentions(*hole, "user")) << hole->str();
  EXPECT_FALSE(hole->chain.empty());
}

TEST(ScopeVerifier, FinitenessBudgetIsEnforced) {
  // The scoped topology is clean under the default budget but some of its
  // interfaces enumerate more than four kinds — a tiny budget must trip
  // the p4-budget rule without inventing any other violation class.
  ScopeVerifier::Options options;
  options.finiteness_budget = 4;
  const TopologyModel model =
      pool::describe_pool_topology(DisciplineConfig::scoped());
  const AnalysisReport report = ScopeVerifier(options).verify(model);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(first_with_rule(report, "esv/p4-budget"), nullptr);
  EXPECT_EQ(first_with_rule(report, "esv/p1-laundering"), nullptr);
  EXPECT_EQ(first_with_rule(report, "esv/p3-routing-hole"), nullptr);
}

TEST(ScopeVerifier, FindingsRenderWithChains) {
  TopologyModel model =
      pool::describe_pool_topology(DisciplineConfig::scoped());
  model.unregister(ErrorScope::kPool);
  const AnalysisReport report = ScopeVerifier().verify(model);
  const std::string rendered = report.str();
  EXPECT_NE(rendered.find("esv/p3-routing-hole"), std::string::npos);
  EXPECT_NE(rendered.find("finding(s)"), std::string::npos);
}

// ---- SARIF writer ----

/// Minimal structural validation: balanced braces/brackets outside strings.
bool json_balanced(const std::string& text) {
  int brace = 0;
  int bracket = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      default: break;
    }
    if (brace < 0 || bracket < 0) return false;
  }
  return brace == 0 && bracket == 0 && !in_string;
}

TEST(Sarif, LogEmitsStructurallyValidSarif210) {
  sarif::Log log("esg-verify", "1.0");
  log.add_rule({"esv/p3-routing-hole", "scope with no handler at or above"});
  log.add_result({.rule_id = "esv/p3-routing-hole",
                  .level = "error",
                  .message = "no handler at or above scope pool",
                  .uri = "",
                  .line = 0,
                  .logical = {"component:user", "detection jvm.execute"}});
  const std::string doc = log.str();

  EXPECT_TRUE(json_balanced(doc)) << doc;
  EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(doc.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(doc.find("\"runs\""), std::string::npos);
  EXPECT_NE(doc.find("\"driver\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\": \"esg-verify\""), std::string::npos);
  EXPECT_NE(doc.find("\"ruleId\": \"esv/p3-routing-hole\""),
            std::string::npos);
  EXPECT_NE(doc.find("logicalLocations"), std::string::npos);
  EXPECT_NE(doc.find("component:user"), std::string::npos);
}

TEST(Sarif, PhysicalLocationCarriesUriAndLine) {
  sarif::Log log("esg-lint", "1.0");
  log.add_rule({"lint/naked-throw", "throw outside core/escape"});
  log.add_result({.rule_id = "lint/naked-throw",
                  .level = "error",
                  .message = "naked throw",
                  .uri = "src/jvm/jvm.cpp",
                  .line = 42,
                  .logical = {}});
  const std::string doc = log.str();
  EXPECT_TRUE(json_balanced(doc)) << doc;
  EXPECT_NE(doc.find("physicalLocation"), std::string::npos);
  EXPECT_NE(doc.find("src/jvm/jvm.cpp"), std::string::npos);
  EXPECT_NE(doc.find("\"startLine\": 42"), std::string::npos);
}

TEST(Sarif, JsonEscapeHandlesControlAndQuote) {
  EXPECT_EQ(sarif::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(sarif::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(sarif::json_escape("a\nb"), "a\\nb");
}

TEST(Sarif, RulesAreDedupedById) {
  sarif::Log log("esg-lint");
  log.add_rule({"lint/naked-throw", "first"});
  log.add_rule({"lint/naked-throw", "duplicate"});
  const std::string doc = log.str();
  std::size_t count = 0;
  for (std::size_t pos = doc.find("\"id\": \"lint/naked-throw\"");
       pos != std::string::npos;
       pos = doc.find("\"id\": \"lint/naked-throw\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

// ---- topology diffs ----

TEST(TopologyDiff, IdenticalDumpsDiffEmpty) {
  const TopologyModel model = pool::describe_pool_topology(
      daemons::DisciplineConfig::scoped());
  const TopologyDiff diff = diff_topologies(model, model);
  EXPECT_TRUE(diff.identical());
  EXPECT_TRUE(diff.removed.empty());
  EXPECT_TRUE(diff.added.empty());
  EXPECT_GT(diff.common, 0u);
  EXPECT_NE(diff.str().find("topologies identical"), std::string::npos);
}

TEST(TopologyDiff, DisciplinesDifferInBothDirections) {
  const TopologyDiff diff = diff_topologies(
      pool::describe_pool_topology(daemons::DisciplineConfig::scoped()),
      pool::describe_pool_topology(daemons::DisciplineConfig::naive()));
  EXPECT_FALSE(diff.identical());
  // Scoped declares handlers/escalations naive lacks, so the scoped->naive
  // diff must show removals; the footer counts both sides.
  EXPECT_FALSE(diff.removed.empty());
  const std::string rendered = diff.str();
  EXPECT_NE(rendered.find("- "), std::string::npos);
  EXPECT_NE(rendered.find("removed"), std::string::npos);
}

TEST(TopologyDiff, MultisetSemanticsCountDuplicates) {
  const TopologyDiff diff =
      diff_topology_dumps("a\nb\nb\nc\n", "a\nb\nd\n");
  ASSERT_EQ(diff.removed.size(), 2u);
  EXPECT_EQ(diff.removed[0], "b");  // the *extra* b, in A's order
  EXPECT_EQ(diff.removed[1], "c");
  ASSERT_EQ(diff.added.size(), 1u);
  EXPECT_EQ(diff.added[0], "d");
  EXPECT_EQ(diff.common, 2u);
}

TEST(TopologyDiff, BlankLinesAreIgnored) {
  const TopologyDiff diff = diff_topology_dumps("a\n\nb\n", "b\na\n");
  EXPECT_TRUE(diff.identical());
  EXPECT_EQ(diff.common, 2u);
}

TEST(TopologyDiff, EmptyModelDiffsAsPureAddition) {
  // The degenerate ends: two empty models are identical (the shared
  // header line is the only declaration), and empty-vs-pool shows the
  // whole pool as additions with nothing removed but the header.
  const TopologyModel empty;
  const TopologyDiff none = diff_topologies(empty, empty);
  EXPECT_TRUE(none.identical());
  EXPECT_EQ(none.common, 1u);  // just the counts header

  const TopologyModel full =
      pool::describe_pool_topology(DisciplineConfig::scoped());
  const TopologyDiff diff = diff_topologies(empty, full);
  EXPECT_FALSE(diff.identical());
  ASSERT_EQ(diff.removed.size(), 1u);  // the empty header's counts line
  EXPECT_EQ(diff.removed[0].rfind("topology:", 0), 0u) << diff.removed[0];
  EXPECT_GT(diff.added.size(), 10u);
  EXPECT_EQ(diff.common, 0u);
}

TEST(TopologyDiff, FederatedDeclarationsDiffAsFlockAdditions) {
  // Federation layers the flock boundary onto the base pool without
  // touching any base declaration: the diff must be additions only (plus
  // the header, whose counts necessarily change) and must surface the
  // flock nodes by name.
  const TopologyDiff diff = diff_topologies(
      pool::describe_pool_topology(DisciplineConfig::scoped()),
      pool::describe_federated_topology(DisciplineConfig::scoped()));
  EXPECT_FALSE(diff.identical());
  ASSERT_EQ(diff.removed.size(), 1u);
  EXPECT_EQ(diff.removed[0].rfind("topology:", 0), 0u) << diff.removed[0];
  const auto added_mentions = [&](const std::string& needle) {
    return std::any_of(diff.added.begin(), diff.added.end(),
                       [&](const std::string& line) {
                         return line.find(needle) != std::string::npos;
                       });
  };
  EXPECT_TRUE(added_mentions("flock.negotiate"));
  EXPECT_TRUE(added_mentions("flock.forward"));
  EXPECT_TRUE(added_mentions("flow flock.forward -> schedd.disposition"));
}

TEST(TopologyDiff, RenamedNodeShowsOnBothSidesOfTheDiff) {
  // A rename is a removal plus an addition for every line the name
  // appears in — the diff keeps both spellings visible so the review
  // reads as "this node changed identity", not "one edge went away".
  TopologyModel a;
  a.declare_detection({"jvm", "jvm.execute", {ErrorKind::kNullPointer}});
  a.declare_flow("jvm.execute", "user.results");
  TopologyModel b;
  b.declare_detection({"jvm", "jvm.exec", {ErrorKind::kNullPointer}});
  b.declare_flow("jvm.exec", "user.results");

  const TopologyDiff diff = diff_topologies(a, b);
  EXPECT_FALSE(diff.identical());
  EXPECT_EQ(diff.removed.size(), 2u);  // detection line + flow line
  EXPECT_EQ(diff.added.size(), 2u);
  EXPECT_EQ(diff.common, 1u);  // the counts header is unchanged
  const std::string rendered = diff.str();
  EXPECT_NE(rendered.find("- "), std::string::npos);
  EXPECT_NE(rendered.find("jvm.execute"), std::string::npos);
  EXPECT_NE(rendered.find("jvm.exec"), std::string::npos);
}

}  // namespace
}  // namespace esg::analysis
