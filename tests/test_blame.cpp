// Tests for the root-cause engine: alignment keys, the two-tier divergence
// rule, ring-wrap confidence degradation, the report round trip, and the
// pinned end-to-end blame of the chaos gate's shrunk chronic plan.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "chaos/blame.hpp"
#include "chaos/plan.hpp"
#include "obs/blame.hpp"
#include "obs/export.hpp"

namespace esg::obs {
namespace {

TraceEvent make_event(std::uint64_t id, std::uint64_t parent,
                      std::int64_t usec, TraceEventType type, ErrorKind kind,
                      ErrorScope scope, std::uint64_t job,
                      std::string component, std::string detail = "") {
  TraceEvent event;
  event.id = id;
  event.parent = parent;
  event.when = SimTime::usec(usec);
  event.type = type;
  event.form = ErrorForm::kExplicit;
  event.kind = kind;
  event.scope = scope;
  event.job = job;
  event.component = std::move(component);
  event.detail = std::move(detail);
  return event;
}

// ---- identity helpers ----

TEST(Blame, DaemonOfSplitsComponentNames) {
  EXPECT_EQ(daemon_of("schedd@submit0"), "schedd");
  EXPECT_EQ(daemon_of("shadow@submit0/job3"), "shadow");
  EXPECT_EQ(daemon_of("starter@p1.exec0"), "starter");
  EXPECT_EQ(daemon_of("escalator"), "escalator");
  EXPECT_EQ(daemon_of(""), "-");
  EXPECT_EQ(daemon_of("@host"), "-");
}

TEST(Blame, PoolOfReadsFederatedProvenance) {
  EXPECT_EQ(pool_of("home.submit"), "home");
  EXPECT_EQ(pool_of("p1.exec0"), "p1");
  EXPECT_EQ(pool_of("exec0"), "-");
  EXPECT_EQ(pool_of(""), "-");
}

TEST(Blame, AlignKeyExcludesIdsAndDetails) {
  TraceEvent a = make_event(1, 0, 100, TraceEventType::kRaised,
                            ErrorKind::kScratchUnavailable,
                            ErrorScope::kRemoteResource, 7, "starter@exec0",
                            "first try");
  TraceEvent b = make_event(900, 17, 999, TraceEventType::kRaised,
                            ErrorKind::kScratchUnavailable,
                            ErrorScope::kRemoteResource, 7, "starter@exec0",
                            "different detail, ids, and time");
  EXPECT_EQ(AlignKey::of(a), AlignKey::of(b));
  b.job = 8;
  EXPECT_NE(AlignKey::of(a), AlignKey::of(b));
}

// ---- alignment and divergence ----

Journal chronic_baseline() {
  Journal journal;
  journal.events.push_back(make_event(
      1, 0, 1000, TraceEventType::kRaised, ErrorKind::kScratchUnavailable,
      ErrorScope::kRemoteResource, 3, "starter@exec1", "env failure"));
  journal.events.push_back(make_event(
      2, 1, 1200, TraceEventType::kRouted, ErrorKind::kScratchUnavailable,
      ErrorScope::kRemoteResource, 3, "schedd@submit0", "to schedd"));
  journal.events.push_back(make_event(
      3, 2, 1300, TraceEventType::kMasked, ErrorKind::kScratchUnavailable,
      ErrorScope::kRemoteResource, 3, "schedd@submit0", "rescheduling"));
  return journal;
}

TEST(Blame, IdenticalJournalsHaveNoDivergence) {
  const Journal journal = chronic_baseline();
  const BlameReport report =
      blame_journals(journal, journal, "left", "right");
  EXPECT_FALSE(report.found());
  EXPECT_EQ(report.divergence, DivergenceKind::kNone);
  EXPECT_EQ(report.confidence, BlameConfidence::kNoDivergence);
  EXPECT_TRUE(report.chain.empty());
  EXPECT_EQ(report.baseline.events, 3u);
  EXPECT_EQ(report.subject.events, 3u);
}

TEST(Blame, ExtraDispositionSpanIsBlamed) {
  const Journal baseline = chronic_baseline();
  Journal subject = baseline;
  subject.events.push_back(make_event(
      4, 2, 1400, TraceEventType::kDelivered, ErrorKind::kScratchUnavailable,
      ErrorScope::kRemoteResource, 3, "schedd@submit0", "to the user"));
  const BlameReport report =
      blame_journals(baseline, subject, "scoped", "naive");
  ASSERT_TRUE(report.found());
  EXPECT_EQ(report.divergence, DivergenceKind::kExtra);
  const AlignKey key = report.blamed_key();
  EXPECT_EQ(key.daemon, "schedd");
  EXPECT_EQ(key.machine, "submit0");
  EXPECT_EQ(key.action, TraceEventType::kDelivered);
  EXPECT_EQ(report.confidence, BlameConfidence::kExact);
  // Chain is root-first and ends at the blamed span.
  ASSERT_EQ(report.chain.size(), 3u);
  EXPECT_EQ(report.chain.front().id, 1u);
  EXPECT_EQ(report.chain.back().id, 4u);
}

TEST(Blame, MissingDispositionSpanIsBlamed) {
  const Journal baseline = chronic_baseline();
  Journal subject = baseline;
  subject.events.pop_back();  // the naive leg never masked/rescheduled
  const BlameReport report =
      blame_journals(baseline, subject, "scoped", "naive");
  ASSERT_TRUE(report.found());
  EXPECT_EQ(report.divergence, DivergenceKind::kMissing);
  EXPECT_EQ(report.blamed_key().action, TraceEventType::kMasked);
  EXPECT_EQ(report.blamed_key().daemon, "schedd");
}

TEST(Blame, DispositionTierOutranksEarlierJourneyNoise) {
  // Both legs saw different journey spans early on (the disciplines
  // schedule differently — benign) and disagree on one disposition later.
  // The disposition must win even though the journey noise is earlier.
  Journal baseline = chronic_baseline();
  baseline.events.insert(
      baseline.events.begin(),
      make_event(10, 0, 10, TraceEventType::kRaised,
                 ErrorKind::kConnectionLost, ErrorScope::kNetwork, 1,
                 "shadow@submit0/job1", "baseline-only retry"));
  Journal subject = chronic_baseline();
  subject.events.insert(
      subject.events.begin(),
      make_event(11, 0, 5, TraceEventType::kRaised,
                 ErrorKind::kConnectionLost, ErrorScope::kNetwork, 2,
                 "shadow@submit0/job2", "subject-only retry"));
  subject.events.push_back(make_event(
      12, 0, 5000, TraceEventType::kDelivered, ErrorKind::kScratchUnavailable,
      ErrorScope::kRemoteResource, 3, "schedd@submit0", "to the user"));
  const BlameReport report =
      blame_journals(baseline, subject, "scoped", "naive");
  ASSERT_TRUE(report.found());
  EXPECT_EQ(report.divergence, DivergenceKind::kExtra);
  EXPECT_EQ(report.blamed_key().action, TraceEventType::kDelivered);
  EXPECT_EQ(report.blamed.when.as_usec(), 5000);
}

TEST(Blame, JourneyDivergenceStillFoundWhenDispositionsAlign) {
  const Journal baseline = chronic_baseline();
  Journal subject = baseline;
  subject.events.push_back(make_event(
      9, 0, 2000, TraceEventType::kEscalated, ErrorKind::kScratchUnavailable,
      ErrorScope::kCluster, 3, "escalator", "widened"));
  const BlameReport report =
      blame_journals(baseline, subject, "scoped", "naive");
  ASSERT_TRUE(report.found());
  EXPECT_EQ(report.divergence, DivergenceKind::kExtra);
  EXPECT_EQ(report.blamed_key().action, TraceEventType::kEscalated);
}

TEST(Blame, SimultaneousDivergenceTiebreaksToExtra) {
  const Journal base = chronic_baseline();
  Journal left = base;
  left.events.push_back(make_event(
      4, 0, 7000, TraceEventType::kConsumed, ErrorKind::kScratchUnavailable,
      ErrorScope::kLocalResource, 0, "schedd@submit0", "avoidance"));
  Journal right = base;
  right.events.push_back(make_event(
      4, 0, 7000, TraceEventType::kDelivered, ErrorKind::kScratchUnavailable,
      ErrorScope::kRemoteResource, 3, "schedd@submit0", "to the user"));
  const BlameReport report = blame_journals(left, right, "l", "r");
  ASSERT_TRUE(report.found());
  // Same `when` on both sides: the subject's extra span names what the
  // failing run actually did, so it wins the tie.
  EXPECT_EQ(report.divergence, DivergenceKind::kExtra);
  EXPECT_EQ(report.blamed_key().action, TraceEventType::kDelivered);
}

TEST(Blame, ChainTruncatesAtEvictedAncestor) {
  Journal baseline = chronic_baseline();
  Journal subject = chronic_baseline();
  // The divergent span's parent chain reaches an id the ring evicted.
  subject.events.push_back(make_event(
      20, 999, 8000, TraceEventType::kDropped, ErrorKind::kScratchUnavailable,
      ErrorScope::kRemoteResource, 3, "schedd@submit0", "lost"));
  const BlameReport report = blame_journals(baseline, subject, "a", "b");
  ASSERT_TRUE(report.found());
  ASSERT_EQ(report.chain.size(), 1u);
  EXPECT_EQ(report.chain.front().id, 20u);
}

// ---- ring-wrap degradation ----

TEST(Blame, RingWrapDegradesConfidenceAndSurfacesDrops) {
  Journal baseline = chronic_baseline();
  Journal subject = chronic_baseline();
  subject.events.pop_back();
  subject.dropped[ErrorScope::kRemoteResource] = 12;
  subject.dropped[ErrorScope::kNetwork] = 5;
  const BlameReport report =
      blame_journals(baseline, subject, "full", "wrapped");
  ASSERT_TRUE(report.found());
  EXPECT_EQ(report.confidence, BlameConfidence::kRingWrapped);
  EXPECT_EQ(report.subject.dropped, 17u);
  EXPECT_EQ(report.baseline.dropped, 0u);
  // The header carries both sides' dropped counts...
  EXPECT_NE(report.str().find("# subject 2 17 wrapped"), std::string::npos);
  // ...and the ANSI rendering says the verdict is suspect.
  EXPECT_NE(report.ansi(false).find("ring-wrapped"), std::string::npos);
}

// ---- torn journals ----

TEST(Blame, TornTrailingLineDiffsOverCompletePrefix) {
  const Journal full = chronic_baseline();
  const std::string text = journal_str(full.events, full.dropped);
  // Tear the final line mid-write, as a crashed writer would leave it.
  const std::string torn = text.substr(0, text.size() - 25);
  ASSERT_FALSE(torn.ends_with('\n'));
  const std::optional<Journal> parsed = parse_journal_prefix(torn);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->events.size(), 2u);
  const BlameReport report =
      blame_journals(full, *parsed, "full", "torn");
  ASSERT_TRUE(report.found());
  // The torn-off span surfaces as the divergence, not a parse failure.
  EXPECT_EQ(report.divergence, DivergenceKind::kMissing);
  EXPECT_EQ(report.blamed.id, full.events.back().id);
}

// ---- federated provenance ----

TEST(Blame, FederatedJournalsCarryPoolProvenanceIntoKeys) {
  Journal baseline;
  baseline.events.push_back(make_event(
      1, 0, 100, TraceEventType::kRaised, ErrorKind::kConnectionLost,
      ErrorScope::kNetwork, 4, "startd@p1.exec0", "trunk severed"));
  Journal subject = baseline;
  subject.events.push_back(make_event(
      2, 1, 300, TraceEventType::kDelivered, ErrorKind::kConnectionLost,
      ErrorScope::kNetwork, 4, "schedd@home.submit", "to the user"));
  const BlameReport report =
      blame_journals(baseline, subject, "scoped", "naive");
  ASSERT_TRUE(report.found());
  const AlignKey key = report.blamed_key();
  EXPECT_EQ(key.daemon, "schedd");
  EXPECT_EQ(key.machine, "home.submit");
  EXPECT_EQ(pool_of(key.machine), "home");
  EXPECT_NE(report.json().find("\"pool\": \"home\""), std::string::npos);
  // Same machine name, different pool = a different blame key.
  TraceEvent other = subject.events.back();
  other.component = "schedd@p2.submit";
  EXPECT_NE(AlignKey::of(subject.events.back()), AlignKey::of(other));
}

// ---- serialization round trip ----

TEST(Blame, ReportRoundTripsThroughTextFormat) {
  Journal baseline = chronic_baseline();
  Journal subject = chronic_baseline();
  subject.events.push_back(make_event(
      4, 3, 2000, TraceEventType::kDelivered, ErrorKind::kScratchUnavailable,
      ErrorScope::kRemoteResource, 3, "schedd@submit0", "tab\tand\\slash"));
  subject.dropped[ErrorScope::kProcess] = 2;
  const BlameReport report =
      blame_journals(baseline, subject, "scoped label with spaces", "naive");
  const std::optional<BlameReport> parsed = parse_blame_report(report.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->baseline, report.baseline);
  EXPECT_EQ(parsed->subject, report.subject);
  EXPECT_EQ(parsed->confidence, report.confidence);
  EXPECT_EQ(parsed->divergence, report.divergence);
  EXPECT_EQ(parsed->chain.size(), report.chain.size());
  EXPECT_EQ(parsed->blamed_key(), report.blamed_key());
  EXPECT_EQ(parsed->blamed.detail, "tab\tand\\slash");
  // Serializing the parse reproduces the exact bytes.
  EXPECT_EQ(parsed->str(), report.str());
}

TEST(Blame, NoDivergenceReportRoundTrips) {
  const Journal journal = chronic_baseline();
  const BlameReport report = blame_journals(journal, journal, "a", "b");
  const std::optional<BlameReport> parsed = parse_blame_report(report.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->found());
  EXPECT_EQ(parsed->str(), report.str());
}

TEST(Blame, ParseRejectsMalformedReports) {
  const Journal journal = chronic_baseline();
  Journal subject = journal;
  subject.events.pop_back();
  const std::string good =
      blame_journals(journal, subject, "a", "b").str();
  EXPECT_TRUE(parse_blame_report(good).has_value());

  EXPECT_FALSE(parse_blame_report("").has_value());
  EXPECT_FALSE(parse_blame_report("# not a blame file\n").has_value());
  // Unknown header line: strict.
  EXPECT_FALSE(
      parse_blame_report(good + "# surprise extension\n").has_value());
  // Chain count mismatch: strict.
  std::string short_chain = good;
  short_chain.resize(short_chain.rfind('\n', short_chain.size() - 2) + 1);
  EXPECT_FALSE(parse_blame_report(short_chain).has_value());
  // A divergent verdict with no chain is inconsistent.
  EXPECT_FALSE(parse_blame_report("# esg-blame v1\n"
                                  "# baseline 3 0 a\n"
                                  "# subject 2 0 b\n"
                                  "# confidence exact\n"
                                  "# verdict missing\n"
                                  "# chain 0\n")
                   .has_value());
}

// ---- pinned end-to-end: the PR 5 chaos gate's shrunk plan ----

/// The exact minimized artifact chaos_campaign_naive_bites produces (seed
/// 1, 32 plans, naive discipline): one chronic fs-fault window on exec2.
/// Pinned here so end-to-end blame is tested on the real gate artifact,
/// not a synthetic journal.
constexpr const char* kPinnedChronicPlan =
    "# esg-faultplan v1\n"
    "# seed 10590380919521690900\n"
    "# pool discipline=naive machines=4 jobs=24 mean-compute-usec=30000000 "
    "limit-usec=28800000000\n"
    "39360815 chronic exec2 rate=0.56\n";

const chaos::FaultPlan& pinned_plan() {
  static const chaos::FaultPlan plan = [] {
    std::optional<chaos::FaultPlan> parsed =
        chaos::parse_plan(kPinnedChronicPlan);
    EXPECT_TRUE(parsed.has_value());
    return *parsed;
  }();
  return plan;
}

TEST(BlameEndToEnd, PinnedChronicPlanBlamesTheSchedd) {
  const BlameReport report = chaos::blame_plan(pinned_plan());
  ASSERT_TRUE(report.found());
  const AlignKey key = report.blamed_key();
  // The naive schedd's disposition is the laundering site esg-flow names
  // statically: the chronic machine fault reaches the user as the job's
  // problem. Dynamic blame must converge on the same daemon.
  EXPECT_EQ(key.daemon, "schedd");
  EXPECT_EQ(key.machine, "submit0");
  EXPECT_EQ(key.scope, ErrorScope::kRemoteResource);
  EXPECT_EQ(key.kind, ErrorKind::kScratchUnavailable);
  EXPECT_EQ(report.confidence, BlameConfidence::kExact);
  // Root-first: the chain starts at the injection's first observable span
  // on the chronic machine and ends at the schedd's disposition.
  ASSERT_GE(report.chain.size(), 2u);
  EXPECT_EQ(daemon_of(report.chain.front().component), "starter");
  EXPECT_EQ(AlignKey::of(report.chain.front()).machine, "exec2");
}

TEST(BlameEndToEnd, BlameIsByteDeterministic) {
  const BlameReport once = chaos::blame_plan(pinned_plan());
  const BlameReport twice = chaos::blame_plan(pinned_plan());
  EXPECT_EQ(once.str(), twice.str());
  EXPECT_EQ(once.json(), twice.json());
  EXPECT_EQ(once.ansi(true), twice.ansi(true));
}

// ---- golden report ----

/// Compare against the committed golden artifact. Bless new output with:
///   ESG_BLESS=1 ./tests/test_blame --gtest_filter='*Golden*'
void expect_matches_golden(const std::string& rendered,
                           const std::string& name) {
  const std::string path =
      std::string(ESG_SOURCE_DIR) + "/tests/golden/" + name;
  if (std::getenv("ESG_BLESS") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot bless " << path;
    out << rendered;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with ESG_BLESS=1 to create)";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(rendered, buf.str())
      << "blame report drifted from " << path
      << "; if intentional, re-bless with ESG_BLESS=1";
}

TEST(BlameGolden, PinnedChronicPlanReportMatchesGolden) {
  const BlameReport report = chaos::blame_plan(pinned_plan());
  expect_matches_golden(report.str(), "chaos-blame.report");
}

}  // namespace
}  // namespace esg::obs
