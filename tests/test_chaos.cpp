// Unit tests for the chaos harness: the FaultPlan DSL and its generator,
// the Injector, the resilience oracles, the campaign runner's
// thread-count-independent determinism, and the pinned fault-injection RNG
// stream ids (common/rng.hpp rng_streams) that determinism rests on.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/inject.hpp"
#include "chaos/oracle.hpp"
#include "chaos/plan.hpp"
#include "common/rng.hpp"
#include "pool/pool.hpp"
#include "pool/workload.hpp"
#include "resilience/pattern.hpp"

namespace esg::chaos {
namespace {

PlanShape small_shape() {
  PlanShape shape;
  shape.hosts = {"exec0", "exec1", "exec2", "exec3"};
  return shape;
}

// ---- plan DSL ----

TEST(FaultPlan, GeneratorIsDeterministic) {
  const FaultPlan a = make_random_plan(1234, small_shape());
  const FaultPlan b = make_random_plan(1234, small_shape());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.str(), b.str());
  const FaultPlan c = make_random_plan(1235, small_shape());
  EXPECT_NE(a.str(), c.str());
}

TEST(FaultPlan, RoundTripsThroughText) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 999ull, 31337ull}) {
    const FaultPlan plan = make_random_plan(seed, small_shape());
    ASSERT_FALSE(plan.empty());
    std::optional<FaultPlan> parsed = parse_plan(plan.str());
    ASSERT_TRUE(parsed.has_value()) << plan.str();
    EXPECT_EQ(plan, *parsed) << plan.str();
  }
}

TEST(FaultPlan, GeneratorKeepsItsSurvivabilityContract) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const FaultPlan plan = make_random_plan(seed, small_shape());
    std::set<std::string> chronic_hosts;
    for (std::size_t i = 0; i < plan.actions.size(); ++i) {
      const FaultAction& action = plan.actions[i];
      switch (action.type) {
        case FaultActionType::kCrash:
        case FaultActionType::kPartition: {
          // Every crash is restarted, every partition healed, later on the
          // same host.
          const FaultActionType recovery =
              action.type == FaultActionType::kCrash ? FaultActionType::kRestart
                                                     : FaultActionType::kHeal;
          bool recovered = false;
          for (std::size_t j = i + 1; j < plan.actions.size(); ++j) {
            if (plan.actions[j].type == recovery &&
                plan.actions[j].host == action.host &&
                plan.actions[j].at > action.at) {
              recovered = true;
              break;
            }
          }
          EXPECT_TRUE(recovered) << "seed " << seed << ": " << action.str();
          break;
        }
        case FaultActionType::kLink:
        case FaultActionType::kFsFaults:
        case FaultActionType::kCorrupt:
          EXPECT_GT(action.duration, SimTime::zero()) << action.str();
          EXPECT_GT(action.rate, 0.0) << action.str();
          break;
        case FaultActionType::kChronic:
          chronic_hosts.insert(action.host);
          break;
        default:
          break;
      }
    }
    // At most one chronic host, and never the whole pool.
    EXPECT_LE(chronic_hosts.size(), 1u) << "seed " << seed;
  }
}

TEST(FaultPlan, ParserIsStrict) {
  EXPECT_FALSE(parse_plan("").has_value());
  EXPECT_FALSE(parse_plan("# not a plan\n").has_value());
  const std::string header =
      "# esg-faultplan v1\n# seed 5\n"
      "# pool discipline=scoped machines=4 jobs=24 "
      "mean-compute-usec=30000000 limit-usec=28800000000\n";
  EXPECT_TRUE(parse_plan(header).has_value());  // empty plan is valid
  EXPECT_FALSE(parse_plan(header + "100 meteor exec0\n").has_value());
  EXPECT_FALSE(parse_plan(header + "100 link exec0 bogus=1\n").has_value());
  EXPECT_FALSE(parse_plan(header + "abc link exec0 rate=0.5\n").has_value());
  // A well-formed line after the same header parses.
  std::optional<FaultPlan> ok = parse_plan(
      header + "100 link exec0 rate=0.50 duration-usec=1000 latency-usec=5\n");
  ASSERT_TRUE(ok.has_value());
  ASSERT_EQ(ok->actions.size(), 1u);
  EXPECT_EQ(ok->actions[0].type, FaultActionType::kLink);
  EXPECT_EQ(ok->actions[0].rate, 0.5);
}

// ---- injector ----

TEST(Injector, AppliesAndRestoresOnSchedule) {
  FaultPlan plan;
  plan.seed = 11;
  plan.shape.machines = 2;
  plan.shape.jobs = 4;
  FaultAction crash;
  crash.at = SimTime::sec(30);
  crash.type = FaultActionType::kCrash;
  crash.host = "exec0";
  FaultAction restart = crash;
  restart.at = SimTime::sec(60);
  restart.type = FaultActionType::kRestart;
  FaultAction window;
  window.at = SimTime::sec(10);
  window.type = FaultActionType::kLink;
  window.host = "exec1";
  window.rate = 0.2;
  window.duration = SimTime::sec(20);
  window.extra_latency = SimTime::msec(3);
  plan.actions = {window, crash, restart};

  pool::SweepCell cell = CampaignRunner::make_cell(plan, "t");
  pool::Pool pool(cell.config);
  pool::stage_workload_inputs(pool);
  // Work that outlasts the whole schedule, so every timer fires inside
  // run_until_done (an idle pool would finish before the first fault).
  for (int i = 0; i < 2; ++i) {
    pool.submit(pool::make_hello_job(SimTime::sec(150)));
  }
  std::shared_ptr<Injector> injector = Injector::arm(pool, plan);
  EXPECT_EQ(injector->fired(), 0u);
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  // 3 applies + 1 window restore, in schedule order.
  ASSERT_EQ(injector->fired(), 4u);
  const std::vector<std::string>& log = injector->log();
  EXPECT_NE(log[0].find("apply"), std::string::npos);
  EXPECT_NE(log[0].find("link"), std::string::npos);
  EXPECT_NE(log[1].find("restore"), std::string::npos);
  EXPECT_NE(log[2].find("crash"), std::string::npos);
  EXPECT_NE(log[3].find("restart"), std::string::npos);
  // The link window closed: base (zero) fault rates are back.
  EXPECT_EQ(pool.fabric().faults_for("exec1").drop_msg_prob, 0.0);
  EXPECT_EQ(pool.fabric().faults_for("exec1").latency,
            cell.config.machines[1].net_faults.latency);
}

// ---- oracles ----

TEST(Oracles, CleanRunPasses) {
  pool::PoolReport report;
  report.jobs_total = 4;
  report.completed_genuine = 4;
  const OracleReport verdict =
      evaluate_oracles(report, /*finished=*/true, /*journal=*/{});
  EXPECT_TRUE(verdict.ok()) << verdict.str();
}

TEST(Oracles, UnfinishedJobsAreLost) {
  pool::PoolReport report;
  report.jobs_total = 4;
  report.completed_genuine = 3;
  report.unfinished = 1;
  const OracleReport verdict = evaluate_oracles(report, /*finished=*/false, {});
  EXPECT_TRUE(verdict.failed(OracleId::kNoLostJob));
}

TEST(Oracles, LeakedCategoriesFailConservation) {
  pool::PoolReport report;
  report.jobs_total = 5;
  report.completed_genuine = 3;  // two jobs unaccounted for
  const OracleReport verdict = evaluate_oracles(report, /*finished=*/true, {});
  EXPECT_TRUE(verdict.failed(OracleId::kConservation));
}

TEST(Oracles, IncidentalExposureFailsAttribution) {
  pool::PoolReport report;
  report.jobs_total = 4;
  report.completed_genuine = 3;
  report.user_incidental_exposures = 1;
  const OracleReport verdict = evaluate_oracles(report, /*finished=*/true, {});
  EXPECT_TRUE(verdict.failed(OracleId::kAttribution));
  EXPECT_FALSE(verdict.failed(OracleId::kConservation));
}

TEST(Oracles, UnconsumedEscapeIsFlagged) {
  pool::PoolReport report;
  report.jobs_total = 1;
  report.completed_genuine = 1;
  obs::TraceEvent escaping;
  escaping.id = 7;
  escaping.type = obs::TraceEventType::kEscalated;
  escaping.form = obs::ErrorForm::kEscaping;
  escaping.kind = ErrorKind::kConnectionLost;
  escaping.component = "shadow";
  const OracleReport verdict =
      evaluate_oracles(report, /*finished=*/true, {escaping});
  EXPECT_TRUE(verdict.failed(OracleId::kEscapesConsumed));
  // ...and the same chain is a P2 violation for the principles oracle.
  EXPECT_TRUE(verdict.failed(OracleId::kPrinciples));

  // Give the escape a consumer and both oracles are satisfied.
  obs::TraceEvent consumed = escaping;
  consumed.id = 8;
  consumed.parent = 7;
  consumed.type = obs::TraceEventType::kConsumed;
  consumed.form = obs::ErrorForm::kExplicit;
  const OracleReport ok =
      evaluate_oracles(report, /*finished=*/true, {escaping, consumed});
  EXPECT_FALSE(ok.failed(OracleId::kEscapesConsumed));
  EXPECT_FALSE(ok.failed(OracleId::kPrinciples));
}

// ---- campaign determinism and shrinking ----

TEST(Campaign, VerdictsAreThreadCountIndependent) {
  CampaignOptions options;
  options.seed = 1;
  options.plans = 8;
  options.shape.discipline = "naive";  // failures exercise the whole path
  options.shrink = false;
  options.threads = 1;
  const CampaignResult serial = CampaignRunner(options).run();
  options.threads = 8;
  const CampaignResult wide = CampaignRunner(options).run();
  EXPECT_EQ(serial.failing, wide.failing);
  EXPECT_EQ(serial.str(), wide.str());
  EXPECT_EQ(serial.json(), wide.json());
}

TEST(Campaign, ScopedPoolSurvivesTheOraclesWhereNaiveFails) {
  CampaignOptions options;
  options.seed = 1;
  options.plans = 6;
  options.shrink = false;
  const CampaignResult scoped = CampaignRunner(options).run();
  EXPECT_TRUE(scoped.all_ok()) << scoped.str();
  options.shape.discipline = "naive";
  const CampaignResult naive = CampaignRunner(options).run();
  EXPECT_GT(naive.failing, 0) << naive.str();
}

TEST(Campaign, EveryCatalogPatternSurvivesWhereNaiveFails) {
  // The catalog's end-to-end promise: a scoped pool survives a full
  // 32-plan campaign no matter which resilience pattern it binds
  // pool-wide — the patterns differ in cost (that is the scorecard's
  // business), never in whether the pool degrades gracefully. The naive
  // pool, which has no scope routing for any pattern to plug into, fails
  // the same campaign.
  CampaignOptions options;
  options.seed = 1;
  options.plans = 32;
  options.shrink = false;
  for (const resilience::PatternKind kind : resilience::kAllPatterns) {
    options.shape.pattern = std::string(resilience::pattern_name(kind));
    const CampaignResult scoped = CampaignRunner(options).run();
    EXPECT_TRUE(scoped.all_ok())
        << "pattern " << options.shape.pattern << ":\n"
        << scoped.str();
  }
  options.shape.pattern.clear();
  options.shape.discipline = "naive";
  const CampaignResult naive = CampaignRunner(options).run();
  EXPECT_GT(naive.failing, 0) << naive.str();
}

TEST(Campaign, ShrinksNaiveFailureToReplayableMinimalPlan) {
  CampaignOptions options;
  options.seed = 1;
  options.plans = 4;
  options.shape.discipline = "naive";
  const CampaignResult result = CampaignRunner(options).run();
  ASSERT_GT(result.failing, 0) << result.str();
  ASSERT_TRUE(result.minimized.has_value());
  EXPECT_LE(result.minimized->actions.size(), 3u) << result.minimized->str();
  EXPECT_GE(result.minimized->actions.size(), 1u);
  EXPECT_GT(result.shrink_probes, 0u);
  // The artifact must still fail when replayed...
  EXPECT_FALSE(result.minimized_oracles.ok());
  // ...and survive the serialize/parse trip a CI artifact takes.
  std::optional<FaultPlan> reread = parse_plan(result.minimized->str());
  ASSERT_TRUE(reread.has_value());
  EXPECT_EQ(*reread, *result.minimized);
  EXPECT_FALSE(CampaignRunner::replay(*reread).ok());
}

// ---- pinned RNG stream ids (the determinism regression test) ----

TEST(RngStreams, LabelsArePinned) {
  // These strings are part of the replay format: a saved fault plan or
  // campaign seed reproduces only if every injection stream forks under
  // the exact label it was recorded with. Renaming one is a breaking
  // change to every saved artifact — this test is the speed bump.
  EXPECT_STREQ(rng_streams::kNetworkFabric, "network-fabric");
  EXPECT_EQ(rng_streams::fs_faults("m"), "fs@m");
  EXPECT_EQ(rng_streams::fs_corruption("m"), "corrupt@m");
  EXPECT_EQ(rng_streams::chaos_fs("m"), "chaos.fs@m");
  EXPECT_EQ(rng_streams::chaos_corruption("m"), "chaos.corrupt@m");
  EXPECT_EQ(rng_streams::retry_jitter("h"), "retry-jitter@h");
}

TEST(RngStreams, ForksAreReproducibleAndLabelSeparated) {
  Rng a(99);
  Rng b(99);
  Rng fa = a.fork(rng_streams::chaos_fs("exec0"));
  Rng fb = b.fork(rng_streams::chaos_fs("exec0"));
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(fa.next_u64(), fb.next_u64());
  }
  // Different labels from identical parents give unrelated streams.
  Rng c(99);
  Rng d(99);
  Rng fc = c.fork(rng_streams::chaos_fs("exec0"));
  Rng fd = d.fork(rng_streams::chaos_corruption("exec0"));
  bool any_different = false;
  for (int i = 0; i < 16; ++i) {
    any_different |= fc.next_u64() != fd.next_u64();
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace esg::chaos
