// Tests for transparent checkpointing and migration.
#include <gtest/gtest.h>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

namespace esg::pool {
namespace {

daemons::JobDescription long_job(SimTime slice = SimTime::minutes(2),
                                 int slices = 10) {
  // Ten two-minute compute slices: checkpoints can land between slices.
  jvm::ProgramBuilder builder("longhaul");
  for (int i = 0; i < slices; ++i) builder.compute(slice);
  daemons::JobDescription job;
  job.program = builder.build();
  return job;
}

TEST(CheckpointUnit, EncodeParseRoundTrip) {
  jvm::Checkpoint ckpt;
  ckpt.pc = 7;
  ckpt.heap_used = 12345;
  ckpt.cpu_seconds = 99.5;
  Result<jvm::Checkpoint> back = jvm::Checkpoint::parse(ckpt.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().pc, 7u);
  EXPECT_EQ(back.value().heap_used, 12345);
  EXPECT_DOUBLE_EQ(back.value().cpu_seconds, 99.5);
}

TEST(CheckpointUnit, GarbageRejected) {
  EXPECT_FALSE(jvm::Checkpoint::parse("not an ad [").ok());
  EXPECT_FALSE(jvm::Checkpoint::parse("[HeapUsed = 3]").ok());  // no Pc
}

TEST(CheckpointUnit, JvmResumesFromPc) {
  sim::Engine engine(3);
  fs::SimFileSystem fs("exec0");
  (void)fs.mkdirs("/scratch");
  jvm::LocalJavaIo io(fs, jvm::IoDiscipline::kConcise);
  jvm::JvmConfig config;
  jvm::SimJvm jvm(engine, config);

  const jvm::JobProgram program = jvm::ProgramBuilder("p")
                                      .compute(SimTime::sec(10))
                                      .compute(SimTime::sec(10))
                                      .compute(SimTime::sec(10))
                                      .build();
  jvm::RunExtras extras;
  extras.resume.pc = 2;  // two slices already done elsewhere
  bool done = false;
  jvm.run(program, io, jvm::WrapMode::kBare, &fs, "/scratch/.result",
          [&](const jvm::JvmOutcome& outcome) {
            done = true;
            EXPECT_TRUE(outcome.completed_main);
            // Only the remaining slice was computed here.
            EXPECT_EQ(outcome.cpu_time, SimTime::sec(10));
          },
          nullptr, extras);
  engine.run();
  EXPECT_TRUE(done);
}

TEST(CheckpointUnit, CorruptResumePointRestarts) {
  sim::Engine engine(3);
  fs::SimFileSystem fs("exec0");
  (void)fs.mkdirs("/scratch");
  jvm::LocalJavaIo io(fs, jvm::IoDiscipline::kConcise);
  jvm::SimJvm jvm(engine, jvm::JvmConfig{});
  const jvm::JobProgram program =
      jvm::ProgramBuilder("p").compute(SimTime::sec(5)).build();
  jvm::RunExtras extras;
  extras.resume.pc = 99;  // past the end: stale/corrupt
  bool done = false;
  jvm.run(program, io, jvm::WrapMode::kBare, &fs, "/scratch/.result",
          [&](const jvm::JvmOutcome& outcome) {
            done = true;
            EXPECT_TRUE(outcome.completed_main);
            EXPECT_EQ(outcome.cpu_time, SimTime::sec(5));  // ran from 0
          },
          nullptr, extras);
  engine.run();
  EXPECT_TRUE(done);
}

TEST(CheckpointUnit, NoCheckpointWhileStreamsOpen) {
  sim::Engine engine(3);
  fs::SimFileSystem fs("exec0");
  (void)fs.mkdirs("/scratch");
  (void)fs.write_file("/data", std::string(1 << 16, 'x'));
  jvm::LocalJavaIo io(fs, jvm::IoDiscipline::kConcise);
  jvm::SimJvm jvm(engine, jvm::JvmConfig{});

  struct Recorder final : jvm::CheckpointSink {
    std::vector<jvm::Checkpoint> stored;
    void store(const jvm::Checkpoint& c) override { stored.push_back(c); }
  } recorder;

  // Stream open from op1 through op4; checkpointable only before/after.
  const jvm::JobProgram program = jvm::ProgramBuilder("p")
                                      .compute(SimTime::minutes(2))   // pc 0
                                      .open_read("/data", 0)          // pc 1
                                      .compute(SimTime::minutes(10))  // pc 2
                                      .read(0, 128)                   // pc 3
                                      .close_stream(0)                // pc 4
                                      .compute(SimTime::minutes(2))   // pc 5
                                      .build();
  jvm::RunExtras extras;
  extras.sink = &recorder;
  extras.checkpoint_interval = SimTime::minutes(1);
  bool done = false;
  jvm.run(program, io, jvm::WrapMode::kBare, &fs, "/scratch/.result",
          [&](const jvm::JvmOutcome&) { done = true; }, nullptr, extras);
  engine.run();
  ASSERT_TRUE(done);
  ASSERT_FALSE(recorder.stored.empty());
  for (const jvm::Checkpoint& c : recorder.stored) {
    // Never inside the open-stream window (pcs 2..4 pending ops with the
    // stream open mean a checkpoint there would capture a connection).
    EXPECT_TRUE(c.pc <= 1 || c.pc >= 5) << "checkpoint at pc " << c.pc;
  }
}

// ---- end to end ----

TEST(CheckpointE2E, EvictionResumesInsteadOfRestarting) {
  PoolConfig config;
  config.seed = 41;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.checkpointing = true;
  config.discipline.checkpoint_interval = SimTime::minutes(1);
  config.machines.push_back(MachineSpec::good("aaa_desk"));
  config.machines.push_back(MachineSpec::good("zzz_farm"));
  Pool pool(config);
  const JobId id = pool.submit(long_job());  // 20 minutes of compute
  pool.boot();
  // Eviction at minute 11: about half the work is done and checkpointed.
  pool.engine().schedule(SimTime::minutes(11), [&pool] {
    pool.startd("aaa_desk")->set_owner_active(true);
    pool.startd("zzz_farm")->set_owner_active(false);
  });
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(3)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  ASSERT_EQ(record->state, daemons::JobState::kCompleted);
  ASSERT_EQ(record->attempts.size(), 2u);
  // Total compute across both attempts stays near the program's 20
  // minutes: the second attempt resumed rather than starting over.
  double total_cpu = 0;
  for (const auto& truth : pool.ground_truth().entries()) {
    total_cpu += truth.cpu_seconds;
  }
  EXPECT_LT(total_cpu, 26 * 60.0);  // 20 min + at most one lost interval + slack
  EXPECT_GE(total_cpu, 20 * 60.0 - 1);
}

TEST(CheckpointE2E, WithoutCheckpointingEvictionRestarts) {
  PoolConfig config;
  config.seed = 41;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.checkpointing = false;
  config.machines.push_back(MachineSpec::good("aaa_desk"));
  config.machines.push_back(MachineSpec::good("zzz_farm"));
  Pool pool(config);
  const JobId id = pool.submit(long_job());
  pool.boot();
  pool.engine().schedule(SimTime::minutes(11), [&pool] {
    pool.startd("aaa_desk")->set_owner_active(true);
    pool.startd("zzz_farm")->set_owner_active(false);
  });
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(3)));
  ASSERT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
  double total_cpu = 0;
  for (const auto& truth : pool.ground_truth().entries()) {
    total_cpu += truth.cpu_seconds;
  }
  // The evicted ~10 minutes are repeated from scratch.
  EXPECT_GE(total_cpu, 29 * 60.0);
}

TEST(CheckpointE2E, CheckpointFileClearedAfterCompletion) {
  PoolConfig config;
  config.seed = 43;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.checkpointing = true;
  config.discipline.checkpoint_interval = SimTime::minutes(1);
  config.machines.push_back(MachineSpec::good("exec0"));
  Pool pool(config);
  const JobId id = pool.submit(long_job(SimTime::minutes(2), 3));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
  EXPECT_FALSE(
      pool.submit_fs().exists(daemons::checkpoint_path(id.value())));
}

TEST(CheckpointE2E, HostCrashAlsoResumes) {
  PoolConfig config;
  config.seed = 47;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.checkpointing = true;
  config.discipline.checkpoint_interval = SimTime::minutes(1);
  config.machines.push_back(MachineSpec::good("aaa_dies"));
  config.machines.push_back(MachineSpec::good("zzz_lives"));
  Pool pool(config);
  const JobId id = pool.submit(long_job());
  pool.boot();
  pool.engine().schedule(SimTime::minutes(11), [&pool] {
    pool.fabric().crash_host("aaa_dies");
    pool.startd("aaa_dies")->shutdown();
  });
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(3)));
  EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
  double total_cpu = 0;
  for (const auto& truth : pool.ground_truth().entries()) {
    total_cpu += truth.cpu_seconds;
  }
  // The crash loses at most the last un-checkpointed interval (plus the
  // slice in flight).
  EXPECT_LT(total_cpu, 26 * 60.0);
}

}  // namespace
}  // namespace esg::pool
