// Unit tests for the Chirp protocol, server, and client.
#include <gtest/gtest.h>

#include "chirp/client.hpp"
#include "chirp/server.hpp"

namespace esg::chirp {
namespace {

// ---- codec ----

TEST(ChirpCodec, RequestRoundTrip) {
  Request req;
  req.command = "open";
  req.args = {"/data/file", "r"};
  Result<Request> parsed = parse_request(req.encode());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().command, "open");
  EXPECT_EQ(parsed.value().args, req.args);
}

TEST(ChirpCodec, RequestWithPayload) {
  Request req;
  req.command = "write";
  req.args = {"3"};
  req.data = "line one\nline two";
  Result<Request> parsed = parse_request(req.encode());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().data, "line one\nline two");
}

TEST(ChirpCodec, ResponseRoundTripWithScope) {
  Response r = Response::fail_scoped(Code::kOffline,
                                     ErrorScope::kLocalResource);
  Result<Response> parsed = parse_response(r.encode());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().code, Code::kOffline);
  ASSERT_TRUE(parsed.value().scope.has_value());
  EXPECT_EQ(*parsed.value().scope, ErrorScope::kLocalResource);
  const Error e = parsed.value().to_error();
  EXPECT_EQ(e.kind(), ErrorKind::kMountOffline);
  EXPECT_EQ(e.scope(), ErrorScope::kLocalResource);
}

TEST(ChirpCodec, ResponseWithoutScopeUsesKindDefault) {
  Result<Response> parsed =
      parse_response(Response::fail(Code::kNotFound).encode());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().scope.has_value());
  EXPECT_EQ(parsed.value().to_error().scope(), ErrorScope::kFile);
}

TEST(ChirpCodec, MalformedInputsRejected) {
  EXPECT_FALSE(parse_request("").ok());
  EXPECT_FALSE(parse_response("").ok());
  EXPECT_FALSE(parse_response("notanumber 0 -").ok());
}

TEST(ChirpCodec, CodeKindMappingRoundTrips) {
  // Every error code maps to a kind that maps back to the same code.
  for (int c = -16; c <= -1; ++c) {
    const Code code = static_cast<Code>(c);
    const ErrorKind kind = code_to_kind(code);
    // kUnknownCommand and kMalformed share a kind; accept either code.
    const Code back = kind_to_code(kind);
    if (code == Code::kUnknownCommand) {
      EXPECT_EQ(back, Code::kMalformed);
    } else {
      EXPECT_EQ(back, code) << "code " << c;
    }
  }
}

// ---- client/server over the fabric ----

struct ChirpFixture {
  sim::Engine engine{11};
  net::NetworkFabric fabric{engine};
  fs::SimFileSystem fs{"exec0"};
  FsBackend backend{fs, "/sandbox"};
  std::unique_ptr<ChirpServer> server;
  std::unique_ptr<ChirpClient> client;
  static constexpr const char* kSecret = "s3cret";

  ChirpFixture() {
    EXPECT_TRUE(fs.mkdirs("/sandbox").ok());
    EXPECT_TRUE(fabric
                    .listen({"exec0", 9000},
                            [this](net::Endpoint ep) {
                              server = std::make_unique<ChirpServer>(
                                  std::move(ep), backend, kSecret);
                            })
                    .ok());
    fabric.connect("exec0", {"exec0", 9000}, [this](Result<net::Endpoint> ep) {
      ASSERT_TRUE(ep.ok());
      client = std::make_unique<ChirpClient>(engine, std::move(ep).value(),
                                             SimTime::sec(5));
    });
    engine.run();
  }

  void auth() {
    bool done = false;
    client->authenticate(kSecret, [&](Result<void> r) {
      ASSERT_TRUE(r.ok());
      done = true;
    });
    engine.run();
    ASSERT_TRUE(done);
  }
};

TEST(ChirpSession, RejectsOpsBeforeAuthentication) {
  ChirpFixture f;
  bool failed = false;
  f.client->open("x", "w", [&](Result<std::int64_t> r) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind(), ErrorKind::kAuthenticationFailed);
    failed = true;
  });
  f.engine.run();
  EXPECT_TRUE(failed);
}

TEST(ChirpSession, RejectsWrongCookie) {
  ChirpFixture f;
  bool failed = false;
  f.client->authenticate("wrong", [&](Result<void> r) {
    ASSERT_FALSE(r.ok());
    failed = true;
  });
  f.engine.run();
  EXPECT_TRUE(failed);
  EXPECT_FALSE(f.server->authenticated());
}

TEST(ChirpSession, OpenWriteReadCloseCycle) {
  ChirpFixture f;
  f.auth();
  std::string read_back;
  f.client->open("file.txt", "w", [&](Result<std::int64_t> fd) {
    ASSERT_TRUE(fd.ok());
    f.client->write(fd.value(), "hello chirp", [&, fd = fd.value()](
                                                    Result<std::int64_t> n) {
      ASSERT_TRUE(n.ok());
      EXPECT_EQ(n.value(), 11);
      f.client->lseek(fd, 0, [&, fd](Result<void> s) {
        ASSERT_TRUE(s.ok());
        f.client->read(fd, 100, [&, fd](Result<std::string> data) {
          ASSERT_TRUE(data.ok());
          read_back = data.value();
          f.client->close_fd(fd, [](Result<void>) {});
        });
      });
    });
  });
  f.engine.run();
  EXPECT_EQ(read_back, "hello chirp");
  // The file really lives in the sandbox.
  EXPECT_TRUE(f.fs.exists("/sandbox/file.txt"));
}

TEST(ChirpSession, OpenMissingIsNotFound) {
  ChirpFixture f;
  f.auth();
  bool checked = false;
  f.client->open("absent", "r", [&](Result<std::int64_t> r) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind(), ErrorKind::kFileNotFound);
    checked = true;
  });
  f.engine.run();
  EXPECT_TRUE(checked);
}

TEST(ChirpSession, StatUnlinkMkdir) {
  ChirpFixture f;
  f.auth();
  ASSERT_TRUE(f.fs.write_file("/sandbox/f", "12345").ok());
  bool done = false;
  f.client->stat("f", [&](Result<std::int64_t> size) {
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(size.value(), 5);
    f.client->mkdir("sub", [&](Result<void> m) {
      ASSERT_TRUE(m.ok());
      f.client->unlink("f", [&](Result<void> u) {
        ASSERT_TRUE(u.ok());
        done = true;
      });
    });
  });
  f.engine.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(f.fs.exists("/sandbox/f"));
  EXPECT_TRUE(f.fs.exists("/sandbox/sub"));
}

TEST(ChirpSession, BadFdIsExplicit) {
  ChirpFixture f;
  f.auth();
  bool checked = false;
  f.client->read(999, 10, [&](Result<std::string> r) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind(), ErrorKind::kBadFileDescriptor);
    checked = true;
  });
  f.engine.run();
  EXPECT_TRUE(checked);
}

TEST(ChirpSession, DiskFullSurfacesThroughProtocol) {
  ChirpFixture f;
  f.fs.add_mount("/sandbox/quota", 4);
  f.auth();
  bool checked = false;
  f.client->open("quota/f", "w", [&](Result<std::int64_t> fd) {
    ASSERT_TRUE(fd.ok());
    f.client->write(fd.value(), "way too much data",
                    [&](Result<std::int64_t> w) {
                      ASSERT_FALSE(w.ok());
                      EXPECT_EQ(w.error().kind(), ErrorKind::kDiskFull);
                      checked = true;
                    });
  });
  f.engine.run();
  EXPECT_TRUE(checked);
}

TEST(ChirpSession, OfflineScratchCarriesResourceScope) {
  sim::Engine engine{3};
  net::NetworkFabric fabric{engine};
  fs::SimFileSystem fs{"exec0"};
  ASSERT_TRUE(fs.mkdirs("/sandbox").ok());
  fs.add_mount("/sandbox", 0);
  // A scratch-side backend stamps remote-resource scope on outages.
  FsBackend backend{fs, "/sandbox", ErrorScope::kRemoteResource};
  std::unique_ptr<ChirpServer> server;
  std::unique_ptr<ChirpClient> client;
  ASSERT_TRUE(fabric
                  .listen({"exec0", 9000},
                          [&](net::Endpoint ep) {
                            server = std::make_unique<ChirpServer>(
                                std::move(ep), backend, "k");
                          })
                  .ok());
  fabric.connect("exec0", {"exec0", 9000}, [&](Result<net::Endpoint> ep) {
    client = std::make_unique<ChirpClient>(engine, std::move(ep).value());
  });
  engine.run();
  bool done = false;
  client->authenticate("k", [&](Result<void>) {
    fs.set_mount_online("/sandbox", false);
    client->open("f", "w", [&](Result<std::int64_t> r) {
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.error().kind(), ErrorKind::kMountOffline);
      EXPECT_EQ(r.error().scope(), ErrorScope::kRemoteResource);
      done = true;
    });
  });
  engine.run();
  EXPECT_TRUE(done);
}

TEST(ChirpSession, TimeoutAbortsConnectionAsEscapingError) {
  // A server that never answers: the client times out, breaks the
  // connection (escaping error), and every pending op fails explicitly.
  sim::Engine engine{5};
  net::NetworkFabric fabric{engine};
  // Listener that accepts but installs no handlers: black hole.
  net::Endpoint hold;
  ASSERT_TRUE(fabric.listen({"b", 1}, [&](net::Endpoint ep) {
    hold = ep;
  }).ok());
  std::unique_ptr<ChirpClient> client;
  fabric.connect("a", {"b", 1}, [&](Result<net::Endpoint> ep) {
    client = std::make_unique<ChirpClient>(engine, std::move(ep).value(),
                                           SimTime::sec(2));
  });
  engine.run();
  bool failed = false;
  client->authenticate("x", [&](Result<void> r) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind(), ErrorKind::kConnectionTimedOut);
    failed = true;
  });
  engine.run();
  EXPECT_TRUE(failed);
  EXPECT_FALSE(client->connected());
  ASSERT_TRUE(client->connection_error().has_value());
}

TEST(ChirpSession, PipelinedRequestsKeepFifoOrder) {
  ChirpFixture f;
  f.auth();
  ASSERT_TRUE(f.fs.write_file("/sandbox/a", "AAAA").ok());
  ASSERT_TRUE(f.fs.write_file("/sandbox/b", "BB").ok());
  std::vector<std::int64_t> sizes;
  f.client->stat("a", [&](Result<std::int64_t> r) {
    ASSERT_TRUE(r.ok());
    sizes.push_back(r.value());
  });
  f.client->stat("b", [&](Result<std::int64_t> r) {
    ASSERT_TRUE(r.ok());
    sizes.push_back(r.value());
  });
  f.engine.run();
  EXPECT_EQ(sizes, (std::vector<std::int64_t>{4, 2}));
}

}  // namespace
}  // namespace esg::chirp

namespace esg::chirp {
namespace {

TEST(ChirpSession, RmdirRenameGetdir) {
  ChirpFixture f;
  f.auth();
  ASSERT_TRUE(f.fs.mkdirs("/sandbox/dir").ok());
  ASSERT_TRUE(f.fs.write_file("/sandbox/dir/a", "1").ok());
  ASSERT_TRUE(f.fs.write_file("/sandbox/dir/b", "2").ok());

  std::vector<std::string> listing;
  bool done = false;
  f.client->getdir("dir", [&](Result<std::vector<std::string>> r) {
    ASSERT_TRUE(r.ok());
    listing = r.value();
    f.client->rename("dir/a", "dir/c", [&](Result<void> mv) {
      ASSERT_TRUE(mv.ok());
      f.client->unlink("dir/b", [&](Result<void> rm) {
        ASSERT_TRUE(rm.ok());
        f.client->unlink("dir/c", [&](Result<void> rm2) {
          ASSERT_TRUE(rm2.ok());
          f.client->rmdir("dir", [&](Result<void> rd) {
            ASSERT_TRUE(rd.ok());
            done = true;
          });
        });
      });
    });
  });
  f.engine.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(listing, (std::vector<std::string>{"a", "b"}));
  EXPECT_FALSE(f.fs.exists("/sandbox/dir"));
}

TEST(ChirpSession, RmdirNonEmptyFails) {
  ChirpFixture f;
  f.auth();
  ASSERT_TRUE(f.fs.mkdirs("/sandbox/full").ok());
  ASSERT_TRUE(f.fs.write_file("/sandbox/full/f", "x").ok());
  bool checked = false;
  f.client->rmdir("full", [&](Result<void> r) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind(), ErrorKind::kAccessDenied);
    checked = true;
  });
  f.engine.run();
  EXPECT_TRUE(checked);
}

TEST(ChirpSession, GetdirOnFileFails) {
  ChirpFixture f;
  f.auth();
  ASSERT_TRUE(f.fs.write_file("/sandbox/plain", "x").ok());
  bool checked = false;
  f.client->getdir("plain", [&](Result<std::vector<std::string>> r) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind(), ErrorKind::kNotDirectory);
    checked = true;
  });
  f.engine.run();
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace esg::chirp
