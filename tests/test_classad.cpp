// Unit tests for the ClassAd language.
#include <gtest/gtest.h>

#include "classad/classad.hpp"
#include "classad/match.hpp"

namespace esg::classad {
namespace {

Value eval(const std::string& text) {
  Result<ExprPtr> e = parse_expr(text);
  EXPECT_TRUE(e.ok()) << text << ": "
                      << (e.ok() ? "" : e.error().message());
  if (!e.ok()) return Value::error("parse failed");
  EvalContext ctx;
  return e.value()->eval(ctx);
}

// ---- literals & arithmetic ----

TEST(ClassAdEval, Literals) {
  EXPECT_TRUE(eval("42").is_int());
  EXPECT_EQ(eval("42").as_int(), 42);
  EXPECT_DOUBLE_EQ(eval("3.5").as_real(), 3.5);
  EXPECT_EQ(eval("\"hi\"").as_string(), "hi");
  EXPECT_TRUE(eval("true").as_bool());
  EXPECT_FALSE(eval("false").as_bool());
  EXPECT_TRUE(eval("undefined").is_undefined());
  EXPECT_TRUE(eval("error").is_error());
}

TEST(ClassAdEval, IntegerArithmetic) {
  EXPECT_EQ(eval("2 + 3 * 4").as_int(), 14);
  EXPECT_EQ(eval("(2 + 3) * 4").as_int(), 20);
  EXPECT_EQ(eval("7 / 2").as_int(), 3);
  EXPECT_EQ(eval("7 % 3").as_int(), 1);
  EXPECT_EQ(eval("-5 + 2").as_int(), -3);
}

TEST(ClassAdEval, RealPromotion) {
  EXPECT_TRUE(eval("1 + 0.5").is_real());
  EXPECT_DOUBLE_EQ(eval("1 + 0.5").as_real(), 1.5);
  EXPECT_DOUBLE_EQ(eval("7.0 / 2").as_real(), 3.5);
}

TEST(ClassAdEval, DivisionByZeroIsError) {
  EXPECT_TRUE(eval("1 / 0").is_error());
  EXPECT_TRUE(eval("1 % 0").is_error());
  EXPECT_TRUE(eval("1.0 / 0.0").is_error());
}

TEST(ClassAdEval, StringConcatViaPlus) {
  EXPECT_EQ(eval("\"a\" + \"b\"").as_string(), "ab");
}

TEST(ClassAdEval, ArithmeticOnStringsIsError) {
  EXPECT_TRUE(eval("\"a\" - \"b\"").is_error());
  EXPECT_TRUE(eval("true + 1").is_error());
}

// ---- three-valued logic ----

TEST(ClassAdEval, UndefinedPropagatesThroughStrictOps) {
  EXPECT_TRUE(eval("1 + undefined").is_undefined());
  EXPECT_TRUE(eval("undefined < 3").is_undefined());
}

TEST(ClassAdEval, ErrorDominatesUndefined) {
  EXPECT_TRUE(eval("error + undefined").is_error());
  EXPECT_TRUE(eval("undefined + error").is_error());
}

TEST(ClassAdEval, BooleanShortCircuit) {
  // The famous ClassAd truth table.
  EXPECT_FALSE(eval("false && undefined").as_bool());
  EXPECT_TRUE(eval("undefined && false").is_bool());
  EXPECT_FALSE(eval("undefined && false").as_bool());
  EXPECT_TRUE(eval("true || undefined").as_bool());
  EXPECT_TRUE(eval("undefined || true").as_bool());
  EXPECT_TRUE(eval("true && undefined").is_undefined());
  EXPECT_TRUE(eval("false || undefined").is_undefined());
  EXPECT_FALSE(eval("false && error").as_bool());
  EXPECT_TRUE(eval("true || error").as_bool());
  EXPECT_TRUE(eval("true && error").is_error());
}

TEST(ClassAdEval, NotOperator) {
  EXPECT_FALSE(eval("!true").as_bool());
  EXPECT_TRUE(eval("!undefined").is_undefined());
  EXPECT_TRUE(eval("!3").is_error());
}

// ---- comparisons ----

TEST(ClassAdEval, NumericComparisonWithPromotion) {
  EXPECT_TRUE(eval("2 < 2.5").as_bool());
  EXPECT_TRUE(eval("3 == 3.0").as_bool());
  EXPECT_TRUE(eval("4 >= 4").as_bool());
}

TEST(ClassAdEval, StringEqualityIsCaseInsensitive) {
  EXPECT_TRUE(eval("\"LINUX\" == \"linux\"").as_bool());
  EXPECT_FALSE(eval("\"a\" == \"b\"").as_bool());
  EXPECT_TRUE(eval("\"abc\" < \"abd\"").as_bool());
}

TEST(ClassAdEval, MixedComparisonIsError) {
  EXPECT_TRUE(eval("1 == \"1\"").is_error());
  EXPECT_TRUE(eval("true < false").is_error());
}

TEST(ClassAdEval, MetaEqualsNeverUndefined) {
  EXPECT_TRUE(eval("undefined =?= undefined").as_bool());
  EXPECT_FALSE(eval("undefined =?= 1").as_bool());
  EXPECT_TRUE(eval("1 =?= 1").as_bool());
  EXPECT_FALSE(eval("\"A\" =?= \"a\"").as_bool());  // case sensitive
  EXPECT_TRUE(eval("undefined =!= 5").as_bool());
  // `is` / `isnt` keyword aliases.
  EXPECT_TRUE(eval("undefined is undefined").as_bool());
  EXPECT_TRUE(eval("1 isnt 2").as_bool());
}

// ---- conditional, lists, subscripts ----

TEST(ClassAdEval, Conditional) {
  EXPECT_EQ(eval("true ? 1 : 2").as_int(), 1);
  EXPECT_EQ(eval("false ? 1 : 2").as_int(), 2);
  EXPECT_TRUE(eval("undefined ? 1 : 2").is_undefined());
  EXPECT_TRUE(eval("3 ? 1 : 2").is_error());
}

TEST(ClassAdEval, ListsAndSubscripts) {
  EXPECT_EQ(eval("{10, 20, 30}[1]").as_int(), 20);
  EXPECT_TRUE(eval("{10}[5]").is_error());
  EXPECT_TRUE(eval("{1,2}[undefined]").is_undefined());
  EXPECT_TRUE(eval("5[0]").is_error());
}

TEST(ClassAdEval, NestedAdSelection) {
  EXPECT_EQ(eval("[a = 1; b = [c = 7]].b.c").as_int(), 7);
  EXPECT_TRUE(eval("[a = 1].missing").is_undefined());
}

// ---- builtins ----

TEST(ClassAdBuiltins, TypePredicates) {
  EXPECT_TRUE(eval("isUndefined(undefined)").as_bool());
  EXPECT_FALSE(eval("isUndefined(0)").as_bool());
  EXPECT_TRUE(eval("isError(1/0)").as_bool());
  EXPECT_TRUE(eval("isString(\"x\")").as_bool());
  EXPECT_TRUE(eval("isInteger(3)").as_bool());
  EXPECT_TRUE(eval("isReal(3.0)").as_bool());
  EXPECT_TRUE(eval("isBoolean(true)").as_bool());
  EXPECT_TRUE(eval("isList({1})").as_bool());
}

TEST(ClassAdBuiltins, Conversions) {
  EXPECT_EQ(eval("int(3.9)").as_int(), 3);
  EXPECT_EQ(eval("int(\"17\")").as_int(), 17);
  EXPECT_TRUE(eval("int(\"xyz\")").is_error());
  EXPECT_DOUBLE_EQ(eval("real(2)").as_real(), 2.0);
  EXPECT_EQ(eval("string(42)").as_string(), "42");
}

TEST(ClassAdBuiltins, Rounding) {
  EXPECT_EQ(eval("floor(2.9)").as_int(), 2);
  EXPECT_EQ(eval("ceiling(2.1)").as_int(), 3);
  EXPECT_EQ(eval("round(2.5)").as_int(), 3);
  EXPECT_EQ(eval("abs(-4)").as_int(), 4);
}

TEST(ClassAdBuiltins, MinMax) {
  EXPECT_EQ(eval("min(3, 1, 2)").as_int(), 1);
  EXPECT_EQ(eval("max({3, 1, 2})").as_int(), 3);
  EXPECT_TRUE(eval("min(1, \"a\")").is_error());
}

TEST(ClassAdBuiltins, Strings) {
  EXPECT_EQ(eval("strcat(\"a\", 1, true)").as_string(), "a1true");
  EXPECT_EQ(eval("substr(\"hello\", 1, 3)").as_string(), "ell");
  EXPECT_EQ(eval("substr(\"hello\", -2)").as_string(), "lo");
  EXPECT_EQ(eval("size(\"abc\")").as_int(), 3);
  EXPECT_EQ(eval("size({1,2})").as_int(), 2);
  EXPECT_EQ(eval("toLower(\"AbC\")").as_string(), "abc");
  EXPECT_EQ(eval("toUpper(\"aBc\")").as_string(), "ABC");
}

TEST(ClassAdBuiltins, Membership) {
  EXPECT_TRUE(eval("member(2, {1, 2, 3})").as_bool());
  EXPECT_TRUE(eval("member(\"A\", {\"a\"})").as_bool());
  EXPECT_FALSE(eval("member(9, {1})").as_bool());
  EXPECT_TRUE(eval("stringListMember(\"b\", \"a, b, c\")").as_bool());
  EXPECT_FALSE(eval("stringListMember(\"z\", \"a,b\")").as_bool());
}

TEST(ClassAdBuiltins, IfThenElse) {
  EXPECT_EQ(eval("ifThenElse(true, 1, 2)").as_int(), 1);
  EXPECT_TRUE(eval("ifThenElse(undefined, 1, 2)").is_undefined());
}

TEST(ClassAdBuiltins, StrictnessPropagatesErrors) {
  EXPECT_TRUE(eval("size(undefined)").is_undefined());
  EXPECT_TRUE(eval("strcat(\"a\", error)").is_error());
}

TEST(ClassAdBuiltins, UnknownFunctionRejectedAtParse) {
  EXPECT_FALSE(parse_expr("frobnicate(1)").ok());
}

// ---- parsing edges ----

TEST(ClassAdParse, Comments) {
  EXPECT_EQ(eval("1 + /* two */ 2 // trailing").as_int(), 3);
}

TEST(ClassAdParse, Errors) {
  EXPECT_FALSE(parse_expr("").ok());
  EXPECT_FALSE(parse_expr("1 +").ok());
  EXPECT_FALSE(parse_expr("(1").ok());
  EXPECT_FALSE(parse_expr("\"unterminated").ok());
  EXPECT_FALSE(parse_expr("1 2").ok());
  EXPECT_FALSE(parse_expr("{1,").ok());
}

TEST(ClassAdParse, StringEscapes) {
  EXPECT_EQ(eval("\"a\\\"b\\n\"").as_string(), "a\"b\n");
}

TEST(ClassAdParse, ScientificNotation) {
  EXPECT_TRUE(eval("1e3").is_real());
  EXPECT_DOUBLE_EQ(eval("1e3").as_real(), 1000.0);
  EXPECT_DOUBLE_EQ(eval("2.5e-1").as_real(), 0.25);
}

// ---- attribute references & ads ----

TEST(ClassAdAds, AttrLookupAndRecursion) {
  Result<ClassAd> ad = parse_classad("a = 1; b = a + 1; c = b * 2");
  ASSERT_TRUE(ad.ok());
  EXPECT_EQ(ad.value().eval_attr("c").as_int(), 4);
  EXPECT_TRUE(ad.value().eval_attr("missing").is_undefined());
}

TEST(ClassAdAds, CaseInsensitiveNames) {
  Result<ClassAd> ad = parse_classad("Memory = 512");
  ASSERT_TRUE(ad.ok());
  EXPECT_EQ(ad.value().eval_attr("memory").as_int(), 512);
  EXPECT_EQ(ad.value().eval_attr("MEMORY").as_int(), 512);
}

TEST(ClassAdAds, CyclicAttributesYieldErrorNotHang) {
  Result<ClassAd> ad = parse_classad("a = b; b = a");
  ASSERT_TRUE(ad.ok());
  EXPECT_TRUE(ad.value().eval_attr("a").is_error());
}

TEST(ClassAdAds, RoundTripThroughText) {
  Result<ClassAd> ad =
      parse_classad("[a = 1; s = \"x\"; e = a + 2; l = {1, 2}]");
  ASSERT_TRUE(ad.ok());
  Result<ClassAd> again = parse_classad(ad.value().str());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().eval_attr("e").as_int(), 3);
  EXPECT_EQ(again.value().eval_attr("l").as_list().size(), 2u);
}

TEST(ClassAdAds, InsertEraseUpdate) {
  ClassAd ad;
  ad.set("x", 1);
  ad.set("x", 2);
  EXPECT_EQ(ad.size(), 1u);
  EXPECT_EQ(ad.eval_int("x"), 2);
  EXPECT_TRUE(ad.erase("X"));
  EXPECT_FALSE(ad.contains("x"));
  EXPECT_FALSE(ad.erase("x"));
}

// ---- matchmaking ----

TEST(ClassAdMatch, SymmetricMatchBothWays) {
  Result<ClassAd> job = parse_classad(
      "MyType = \"Job\"; ImageSizeMB = 64;"
      "Requirements = TARGET.Memory >= MY.ImageSizeMB;"
      "Rank = TARGET.Memory");
  Result<ClassAd> machine = parse_classad(
      "MyType = \"Machine\"; Memory = 512;"
      "Requirements = TARGET.ImageSizeMB <= 256; Rank = 0");
  ASSERT_TRUE(job.ok() && machine.ok());
  const MatchResult m = symmetric_match(job.value(), machine.value());
  EXPECT_TRUE(m.matched);
  EXPECT_DOUBLE_EQ(m.left_rank, 512);
}

TEST(ClassAdMatch, OneSidedRefusalBlocksMatch) {
  Result<ClassAd> job =
      parse_classad("ImageSizeMB = 1000; Requirements = true");
  Result<ClassAd> machine = parse_classad(
      "Memory = 512; Requirements = TARGET.ImageSizeMB <= MY.Memory");
  ASSERT_TRUE(job.ok() && machine.ok());
  const MatchResult m = symmetric_match(job.value(), machine.value());
  EXPECT_FALSE(m.matched);
  EXPECT_TRUE(m.left_accepts);
  EXPECT_FALSE(m.right_accepts);
}

TEST(ClassAdMatch, UndefinedRequirementsNeverAdmit) {
  // An absent or undefined policy must not admit a match — undefined is
  // not true (the language's own Principle 4 discipline).
  Result<ClassAd> a = parse_classad("Requirements = TARGET.NoSuchAttr");
  Result<ClassAd> b = parse_classad("Requirements = true");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_FALSE(symmetric_match(a.value(), b.value()).matched);
  ClassAd empty;
  EXPECT_FALSE(symmetric_match(empty, b.value()).matched);
}

TEST(ClassAdMatch, HasJavaIdiom) {
  // The Java Universe matching idiom used throughout the benches: =?=
  // true admits only machines that *advertise* java.
  Result<ClassAd> job =
      parse_classad("Requirements = TARGET.HasJava =?= true");
  Result<ClassAd> with_java =
      parse_classad("HasJava = true; Requirements = true");
  Result<ClassAd> without =
      parse_classad("Requirements = true");
  ASSERT_TRUE(job.ok() && with_java.ok() && without.ok());
  EXPECT_TRUE(symmetric_match(job.value(), with_java.value()).matched);
  EXPECT_FALSE(symmetric_match(job.value(), without.value()).matched);
}

// ---- parameterized: every binary op propagates undefined strictly ----

class StrictOpTest : public ::testing::TestWithParam<const char*> {};

TEST_P(StrictOpTest, UndefinedIn_UndefinedOut) {
  const std::string expr = std::string("1 ") + GetParam() + " undefined";
  const Value v = eval(expr);
  EXPECT_TRUE(v.is_undefined()) << expr << " -> " << v.str();
}

INSTANTIATE_TEST_SUITE_P(AllStrictOps, StrictOpTest,
                         ::testing::Values("+", "-", "*", "/", "%", "<", "<=",
                                           ">", ">=", "==", "!="));

}  // namespace
}  // namespace esg::classad

namespace esg::classad {
namespace {

Value eval2(const std::string& text) {
  Result<ExprPtr> e = parse_expr(text);
  EXPECT_TRUE(e.ok()) << text;
  if (!e.ok()) return Value::error("parse failed");
  EvalContext ctx;
  return e.value()->eval(ctx);
}

TEST(ClassAdBuiltins, Regexp) {
  EXPECT_TRUE(eval2("regexp(\"^abc\", \"abcdef\")").as_bool());
  EXPECT_TRUE(eval2("regexp(\"cde\", \"abcdef\")").as_bool());  // partial
  EXPECT_FALSE(eval2("regexp(\"^cde\", \"abcdef\")").as_bool());
  EXPECT_TRUE(eval2("regexp(\"ABC\", \"abcdef\", \"i\")").as_bool());
  EXPECT_FALSE(eval2("regexp(\"abc\", \"abcdef\", \"f\")").as_bool());
  EXPECT_TRUE(eval2("regexp(\"abc.*\", \"abcdef\", \"f\")").as_bool());
  EXPECT_TRUE(eval2("regexp(\"[\", \"x\")").is_error());  // bad pattern
  EXPECT_TRUE(eval2("regexp(1, \"x\")").is_error());
  EXPECT_TRUE(eval2("regexp(undefined, \"x\")").is_undefined());
}

TEST(ClassAdBuiltins, RegexpMachineNameIdiom) {
  // The policy idiom: admit only machines from a trusted domain.
  Result<ClassAd> job = parse_classad(
      "Requirements = regexp(\"\\\\.cs\\\\.wisc\\\\.edu$\", TARGET.Machine)");
  Result<ClassAd> good =
      parse_classad("Machine = \"c01.cs.wisc.edu\"; Requirements = true");
  Result<ClassAd> bad =
      parse_classad("Machine = \"evil.example.com\"; Requirements = true");
  ASSERT_TRUE(job.ok() && good.ok() && bad.ok());
  EXPECT_TRUE(symmetric_match(job.value(), good.value()).matched);
  EXPECT_FALSE(symmetric_match(job.value(), bad.value()).matched);
}

TEST(ClassAdBuiltins, StringListNumerics) {
  EXPECT_EQ(eval2("stringListSize(\"a, b, c\")").as_int(), 3);
  EXPECT_EQ(eval2("stringListSize(\"\")").as_int(), 0);
  EXPECT_EQ(eval2("stringListSize(\"a;b\", \";\")").as_int(), 2);
  EXPECT_DOUBLE_EQ(eval2("stringListSum(\"1, 2, 3.5\")").as_real(), 6.5);
  EXPECT_DOUBLE_EQ(eval2("stringListAvg(\"2, 4\")").as_real(), 3.0);
  EXPECT_DOUBLE_EQ(eval2("stringListMin(\"5, 2, 9\")").as_real(), 2.0);
  EXPECT_DOUBLE_EQ(eval2("stringListMax(\"5, 2, 9\")").as_real(), 9.0);
  EXPECT_TRUE(eval2("stringListSum(\"1, x\")").is_error());
  EXPECT_TRUE(eval2("stringListMin(\"\")").is_undefined());
}

}  // namespace
}  // namespace esg::classad

namespace esg::classad {
namespace {

TEST(ValueCorners, SameAsAcrossTypes) {
  EXPECT_TRUE(Value::undefined().same_as(Value::undefined()));
  EXPECT_TRUE(Value::error("a").same_as(Value::error("b")));  // reason ignored
  EXPECT_FALSE(Value::integer(1).same_as(Value::real(1.0)));  // type-strict
  EXPECT_TRUE(Value::list({Value::integer(1)})
                  .same_as(Value::list({Value::integer(1)})));
  EXPECT_FALSE(Value::list({Value::integer(1)})
                   .same_as(Value::list({Value::integer(2)})));
  EXPECT_FALSE(Value::list({}).same_as(Value::list({Value::integer(1)})));
}

TEST(ValueCorners, StringRendering) {
  EXPECT_EQ(Value::real(2.0).str(), "2.0");   // reals re-parse as reals
  EXPECT_EQ(Value::string("a\"b\n").str(), "\"a\\\"b\\n\"");
  EXPECT_EQ(Value::list({Value::integer(1), Value::boolean(true)}).str(),
            "{1, true}");
}

TEST(ValueCorners, QuoteRoundTripsThroughParser) {
  const std::string nasty = "line1\nline2\t\"quoted\"\\slash";
  Result<ExprPtr> parsed = parse_expr(quote_string(nasty));
  ASSERT_TRUE(parsed.ok());
  EvalContext ctx;
  EXPECT_EQ(parsed.value()->eval(ctx).as_string(), nasty);
}

}  // namespace
}  // namespace esg::classad
