// Property-style tests for the ClassAd language: generated-expression
// round trips, the full operator/type matrix, and evaluation invariants.
#include <gtest/gtest.h>

#include "classad/classad.hpp"
#include "classad/match.hpp"
#include "common/rng.hpp"

namespace esg::classad {
namespace {

// ---- generated expressions: unparse/eval round-trip property ----

/// Generate a random well-formed expression of bounded depth.
std::string gen_expr(Rng& rng, int depth) {
  if (depth <= 0 || rng.chance(0.35)) {
    switch (rng.uniform_int(0, 5)) {
      case 0: return std::to_string(rng.uniform_int(-100, 100));
      case 1: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f", rng.uniform(-50, 50));
        return buf;
      }
      case 2: return rng.chance(0.5) ? "true" : "false";
      case 3: return "\"s" + std::to_string(rng.uniform_int(0, 9)) + "\"";
      case 4: return "undefined";
      default: return "x" + std::to_string(rng.uniform_int(0, 3));
    }
  }
  switch (rng.uniform_int(0, 4)) {
    case 0: {
      static const char* kOps[] = {"+", "-", "*", "/", "%",  "<",  "<=",
                                   ">", ">=", "==", "!=", "&&", "||",
                                   "=?=", "=!="};
      const char* op = kOps[rng.uniform_int(0, 14)];
      return "(" + gen_expr(rng, depth - 1) + " " + op + " " +
             gen_expr(rng, depth - 1) + ")";
    }
    case 1:
      return "(" + gen_expr(rng, depth - 1) + " ? " + gen_expr(rng, depth - 1) +
             " : " + gen_expr(rng, depth - 1) + ")";
    case 2:
      return "-(" + gen_expr(rng, depth - 1) + ")";
    case 3:
      return "{" + gen_expr(rng, depth - 1) + ", " + gen_expr(rng, depth - 1) +
             "}";
    default:
      return "ifThenElse(isInteger(" + gen_expr(rng, depth - 1) + "), " +
             gen_expr(rng, depth - 1) + ", " + gen_expr(rng, depth - 1) + ")";
  }
}

TEST(ClassAdProperty, UnparseReparseEvalFixpoint) {
  // For any generated expression: it parses; its unparse parses; and the
  // reparse evaluates to the same value (unparse is semantically lossless).
  Rng rng(2024);
  Result<ClassAd> env = parse_classad("x0 = 1; x1 = 2.5; x2 = \"s\"; x3 = true");
  ASSERT_TRUE(env.ok());
  for (int i = 0; i < 800; ++i) {
    const std::string text = gen_expr(rng, 4);
    Result<ExprPtr> parsed = parse_expr(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EvalContext ctx;
    ctx.my = &env.value();
    const Value v1 = parsed.value()->eval(ctx);
    const std::string unparsed = parsed.value()->str();
    Result<ExprPtr> reparsed = parse_expr(unparsed);
    ASSERT_TRUE(reparsed.ok()) << unparsed;
    const Value v2 = reparsed.value()->eval(ctx);
    EXPECT_TRUE(v1.same_as(v2)) << text << " -> " << v1.str() << " vs "
                                << unparsed << " -> " << v2.str();
  }
}

TEST(ClassAdProperty, CloneEvaluatesIdentically) {
  Rng rng(2025);
  for (int i = 0; i < 300; ++i) {
    Result<ExprPtr> parsed = parse_expr(gen_expr(rng, 4));
    ASSERT_TRUE(parsed.ok());
    const ExprPtr clone = parsed.value()->clone();
    EvalContext ctx;
    EXPECT_TRUE(parsed.value()->eval(ctx).same_as(clone->eval(ctx)));
  }
}

TEST(ClassAdProperty, EvaluationIsPure) {
  // Evaluating twice yields the same value (no hidden state).
  Rng rng(2026);
  for (int i = 0; i < 300; ++i) {
    Result<ExprPtr> parsed = parse_expr(gen_expr(rng, 4));
    ASSERT_TRUE(parsed.ok());
    EvalContext ctx;
    EXPECT_TRUE(parsed.value()->eval(ctx).same_as(parsed.value()->eval(ctx)));
  }
}

// ---- full operator/type matrix ----

struct TypedOperand {
  const char* label;
  const char* text;
};

const TypedOperand kOperands[] = {
    {"int", "3"},        {"real", "2.5"},   {"string", "\"a\""},
    {"bool", "true"},    {"undef", "undefined"}, {"error", "error"},
    {"list", "{1, 2}"},
};

class OperatorMatrix
    : public ::testing::TestWithParam<std::tuple<const char*, int, int>> {};

TEST_P(OperatorMatrix, TotalAndClosed) {
  // Every operator applied to every operand pair yields *some* value —
  // never a crash — and meta-comparisons never yield undefined/error.
  const auto& [op, left_index, right_index] = GetParam();
  const std::string text = std::string("(") + kOperands[left_index].text +
                           " " + op + " " + kOperands[right_index].text + ")";
  Result<ExprPtr> parsed = parse_expr(text);
  ASSERT_TRUE(parsed.ok()) << text;
  EvalContext ctx;
  const Value v = parsed.value()->eval(ctx);
  if (std::string(op) == "=?=" || std::string(op) == "=!=") {
    EXPECT_TRUE(v.is_bool()) << text << " -> " << v.str();
  }
  // Strictness: an error operand contaminates every strict operator.
  if (std::string(kOperands[left_index].label) == "error" &&
      std::string(op) != "=?=" && std::string(op) != "=!=" &&
      std::string(op) != "||" && std::string(op) != "&&") {
    EXPECT_TRUE(v.is_error()) << text << " -> " << v.str();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, OperatorMatrix,
    ::testing::Combine(::testing::Values("+", "-", "*", "/", "%", "<", "<=",
                                         ">", ">=", "==", "!=", "&&", "||",
                                         "=?=", "=!="),
                       ::testing::Range(0, 7), ::testing::Range(0, 7)));

// ---- matchmaking invariants ----

TEST(MatchProperty, MatchIsSymmetricInOutcome) {
  Result<ClassAd> a = parse_classad(
      "Memory = 128; Requirements = TARGET.Memory >= 64; Rank = 1");
  Result<ClassAd> b = parse_classad(
      "Memory = 256; Requirements = TARGET.Memory >= 100; Rank = 2");
  ASSERT_TRUE(a.ok() && b.ok());
  const MatchResult ab = symmetric_match(a.value(), b.value());
  const MatchResult ba = symmetric_match(b.value(), a.value());
  EXPECT_EQ(ab.matched, ba.matched);
  EXPECT_EQ(ab.left_accepts, ba.right_accepts);
  EXPECT_EQ(ab.right_accepts, ba.left_accepts);
  EXPECT_DOUBLE_EQ(ab.left_rank, ba.right_rank);
}

TEST(MatchProperty, ErrorRequirementsNeverAdmit) {
  Result<ClassAd> broken = parse_classad("Requirements = 1 / 0");
  Result<ClassAd> open = parse_classad("Requirements = true");
  ASSERT_TRUE(broken.ok() && open.ok());
  EXPECT_FALSE(symmetric_match(broken.value(), open.value()).matched);
}

TEST(MatchProperty, NonBooleanRequirementsNeverAdmit) {
  Result<ClassAd> numeric = parse_classad("Requirements = 42");
  Result<ClassAd> open = parse_classad("Requirements = true");
  ASSERT_TRUE(numeric.ok() && open.ok());
  EXPECT_FALSE(symmetric_match(numeric.value(), open.value()).matched);
}

TEST(MatchProperty, TimeIsAvailableToPolicies) {
  // An owner policy that only admits jobs after t=100s.
  Result<ClassAd> machine =
      parse_classad("Requirements = time() >= 100; Rank = 0");
  Result<ClassAd> job = parse_classad("Requirements = true; Rank = 0");
  ASSERT_TRUE(machine.ok() && job.ok());
  EXPECT_FALSE(
      symmetric_match(machine.value(), job.value(), SimTime::sec(50)).matched);
  EXPECT_TRUE(
      symmetric_match(machine.value(), job.value(), SimTime::sec(150)).matched);
}

// ---- ad-level invariants ----

TEST(ClassAdProperty, UpdateIsIdempotent) {
  Result<ClassAd> a = parse_classad("x = 1; y = 2");
  Result<ClassAd> b = parse_classad("y = 3; z = 4");
  ASSERT_TRUE(a.ok() && b.ok());
  ClassAd once = a.value();
  once.update(b.value());
  ClassAd twice = once;
  twice.update(b.value());
  EXPECT_EQ(once.str(), twice.str());
  EXPECT_EQ(once.eval_int("y"), 3);
  EXPECT_EQ(once.size(), 3u);
}

TEST(ClassAdProperty, CopyIsDeep) {
  Result<ClassAd> a = parse_classad("x = 1 + 1");
  ASSERT_TRUE(a.ok());
  ClassAd copy = a.value();
  a.value().set("x", 99);
  EXPECT_EQ(copy.eval_int("x"), 2);
}

TEST(ClassAdProperty, MultilineRenderingParsesBack) {
  Result<ClassAd> a =
      parse_classad("Requirements = TARGET.HasJava =?= true; Rank = Memory");
  ASSERT_TRUE(a.ok());
  Result<ClassAd> back = parse_classad(a.value().str_multiline());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().str(), a.value().str());
}

}  // namespace
}  // namespace esg::classad
