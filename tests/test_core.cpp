// Unit tests for the error-scope core library.
#include <gtest/gtest.h>

#include "core/core.hpp"

namespace esg {
namespace {

// ---- scope ----

TEST(Scope, NamesRoundTrip) {
  for (ErrorScope s : kAllScopes) {
    const auto parsed = parse_scope(scope_name(s));
    ASSERT_TRUE(parsed.has_value()) << scope_name(s);
    EXPECT_EQ(*parsed, s);
  }
}

TEST(Scope, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_scope("").has_value());
  EXPECT_FALSE(parse_scope("banana").has_value());
  EXPECT_FALSE(parse_scope("Program").has_value());  // names are lowercase
}

TEST(Scope, RankIsStrictlyMonotoneOverChain) {
  // The paper's Java Universe chain, §4 / Figure 3.
  EXPECT_LT(scope_rank(ErrorScope::kProgram),
            scope_rank(ErrorScope::kVirtualMachine));
  EXPECT_LT(scope_rank(ErrorScope::kVirtualMachine),
            scope_rank(ErrorScope::kRemoteResource));
  EXPECT_LT(scope_rank(ErrorScope::kRemoteResource),
            scope_rank(ErrorScope::kLocalResource));
  EXPECT_LT(scope_rank(ErrorScope::kLocalResource),
            scope_rank(ErrorScope::kJob));
}

TEST(Scope, AllRanksDistinct) {
  for (ErrorScope a : kAllScopes) {
    for (ErrorScope b : kAllScopes) {
      if (a != b) {
        EXPECT_NE(scope_rank(a), scope_rank(b));
      }
    }
  }
}

TEST(Scope, ContainsIsReflexiveAndAntisymmetricish) {
  for (ErrorScope s : kAllScopes) {
    EXPECT_TRUE(scope_contains(s, s));
  }
  EXPECT_TRUE(scope_contains(ErrorScope::kJob, ErrorScope::kProgram));
  EXPECT_FALSE(scope_contains(ErrorScope::kProgram, ErrorScope::kJob));
}

TEST(Scope, ScheddDispositionMatchesPaper) {
  // §4: program -> complete; job -> unexecutable; in between -> retry.
  EXPECT_EQ(schedd_disposition(ErrorScope::kProgram),
            ScheddDisposition::kComplete);
  EXPECT_EQ(schedd_disposition(ErrorScope::kJob),
            ScheddDisposition::kUnexecutable);
  EXPECT_EQ(schedd_disposition(ErrorScope::kVirtualMachine),
            ScheddDisposition::kRetryElsewhere);
  EXPECT_EQ(schedd_disposition(ErrorScope::kRemoteResource),
            ScheddDisposition::kRetryElsewhere);
  EXPECT_EQ(schedd_disposition(ErrorScope::kLocalResource),
            ScheddDisposition::kRetryElsewhere);
  EXPECT_EQ(schedd_disposition(ErrorScope::kNetwork),
            ScheddDisposition::kRetryElsewhere);
  // Anything at or above job scope ends the job.
  EXPECT_EQ(schedd_disposition(ErrorScope::kPool),
            ScheddDisposition::kUnexecutable);
}

// ---- kinds ----

TEST(Kinds, NamesRoundTrip) {
  for (ErrorKind k : kAllKinds) {
    const auto parsed = parse_kind(kind_name(k));
    ASSERT_TRUE(parsed.has_value()) << kind_name(k);
    EXPECT_EQ(*parsed, k);
  }
}

TEST(Kinds, Figure4DefaultScopes) {
  // The rows of Figure 4, bottom to top.
  EXPECT_EQ(default_scope(ErrorKind::kNullPointer), ErrorScope::kProgram);
  EXPECT_EQ(default_scope(ErrorKind::kOutOfMemory),
            ErrorScope::kVirtualMachine);
  EXPECT_EQ(default_scope(ErrorKind::kJvmMisconfigured),
            ErrorScope::kRemoteResource);
  EXPECT_EQ(default_scope(ErrorKind::kInputUnavailable),
            ErrorScope::kLocalResource);
  EXPECT_EQ(default_scope(ErrorKind::kCorruptImage), ErrorScope::kJob);
}

TEST(Kinds, FileErrorsHaveFileScope) {
  EXPECT_EQ(default_scope(ErrorKind::kFileNotFound), ErrorScope::kFile);
  EXPECT_EQ(default_scope(ErrorKind::kDiskFull), ErrorScope::kFile);
  EXPECT_EQ(default_scope(ErrorKind::kEndOfFile), ErrorScope::kFile);
}

// ---- Error ----

TEST(Error, WidenScopeNeverNarrows) {
  Error e(ErrorKind::kConnectionLost);  // network scope
  e.widen_scope_in_place(ErrorScope::kFile);
  EXPECT_EQ(e.scope(), ErrorScope::kNetwork);
  e.widen_scope_in_place(ErrorScope::kCluster);
  EXPECT_EQ(e.scope(), ErrorScope::kCluster);
}

TEST(Error, CauseChainIsPreservedAndRendered) {
  Error low = Error(ErrorKind::kMountOffline, "nfs server gone");
  Error high = Error(ErrorKind::kInputUnavailable, "cannot stage input")
                   .caused_by(std::move(low));
  ASSERT_NE(high.cause(), nullptr);
  EXPECT_EQ(high.cause()->kind(), ErrorKind::kMountOffline);
  const std::string text = high.describe();
  EXPECT_NE(text.find("caused by"), std::string::npos);
  EXPECT_NE(text.find("nfs server gone"), std::string::npos);
}

TEST(Error, LabelsPropagateThroughCauseChains) {
  Error low = Error(ErrorKind::kIoError).with_label("injected", "transient");
  Error high = Error(ErrorKind::kUncaughtException).caused_by(std::move(low));
  ASSERT_NE(high.label("injected"), nullptr);
  EXPECT_EQ(*high.label("injected"), "transient");
}

TEST(Error, StrMentionsKindScopeAndOrigin) {
  const Error e =
      Error(ErrorKind::kDiskFull, "no space").with_origin("starter@exec0");
  const std::string s = e.str();
  EXPECT_NE(s.find("disk-full"), std::string::npos);
  EXPECT_NE(s.find("file"), std::string::npos);
  EXPECT_NE(s.find("starter@exec0"), std::string::npos);
}

// ---- Result ----

TEST(Result, ValueAndErrorArms) {
  Result<int> ok = 42;
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Result<int> bad = Error(ErrorKind::kDiskFull);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().kind(), ErrorKind::kDiskFull);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(Result, MonadicComposition) {
  Result<int> r = Result<int>(10)
                      .and_then([](int v) -> Result<int> { return v * 2; })
                      .map([](int v) { return v + 1; });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 21);

  Result<int> e = Result<int>(Error(ErrorKind::kEndOfFile))
                      .and_then([](int v) -> Result<int> { return v; });
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.error().kind(), ErrorKind::kEndOfFile);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok = Ok();
  EXPECT_TRUE(ok.ok());
  Result<void> bad = Error(ErrorKind::kAccessDenied);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().kind(), ErrorKind::kAccessDenied);
}

// ---- escape ----

TEST(Escape, CatchEscapeConvertsToExplicit) {
  // Principle 2: the escaping error becomes explicit one level up.
  Result<int> r = catch_escape([]() -> int {
    escape(Error(ErrorKind::kConnectionLost, "wire cut"));
  });
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind(), ErrorKind::kConnectionLost);
}

TEST(Escape, PassesValuesThrough) {
  Result<int> r = catch_escape([]() -> int { return 5; });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);

  Result<void> v = catch_escape([] {});
  EXPECT_TRUE(v.ok());
}

TEST(Escape, UnifiesWithResultReturningCallables) {
  Result<int> explicit_err = catch_escape(
      []() -> Result<int> { return Error(ErrorKind::kFileNotFound); });
  ASSERT_FALSE(explicit_err.ok());
  EXPECT_EQ(explicit_err.error().kind(), ErrorKind::kFileNotFound);

  Result<int> escaped = catch_escape([]() -> Result<int> {
    escape(Error(ErrorKind::kOutOfMemory));
  });
  ASSERT_FALSE(escaped.ok());
  EXPECT_EQ(escaped.error().kind(), ErrorKind::kOutOfMemory);
}

// ---- ErrorInterface ----

TEST(ErrorInterface, AllowsContractualErrors) {
  const ErrorInterface open_contract(
      "open", {ErrorKind::kFileNotFound, ErrorKind::kAccessDenied});
  Result<int> r =
      open_contract.filter(Result<int>(Error(ErrorKind::kFileNotFound)));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind(), ErrorKind::kFileNotFound);
}

TEST(ErrorInterface, EscapesNonContractualErrors) {
  const ErrorInterface open_contract("open", {ErrorKind::kFileNotFound});
  bool escaped = false;
  try {
    (void)open_contract.filter(Result<int>(Error(ErrorKind::kConnectionLost)),
                               ErrorScope::kProcess);
  } catch (const EscapingError& e) {
    escaped = true;
    EXPECT_EQ(e.error().kind(), ErrorKind::kConnectionLost);
    EXPECT_GE(scope_rank(e.error().scope()), scope_rank(ErrorScope::kProcess));
  }
  EXPECT_TRUE(escaped);
}

TEST(ErrorInterface, PassesSuccessUntouched) {
  const ErrorInterface contract("f", {ErrorKind::kEndOfFile});
  Result<int> r = contract.filter(Result<int>(9));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 9);
}

TEST(ErrorInterface, LeakRecordsViolation) {
  PrincipleAudit::global().reset();  // esg-lint: allow(lint/global-singleton)
  const ErrorInterface contract("write", {ErrorKind::kDiskFull});
  Result<int> r =
      contract.leak(Result<int>(Error(ErrorKind::kCredentialsExpired)));
  ASSERT_FALSE(r.ok());  // the error was leaked, not escaped
  EXPECT_EQ(PrincipleAudit::global().violated(Principle::kP4), 1u);  // esg-lint: allow(lint/global-singleton)
}

// ---- ScopeRouter ----

TEST(ScopeRouter, RoutesToExactScopeManager) {
  ScopeRouter router;
  std::string handled_by;
  router.register_handler(ErrorScope::kVirtualMachine, "jvm",
                          [&](Error&) {
                            handled_by = "jvm";
                            return Disposition::kHandled;
                          });
  router.register_handler(ErrorScope::kJob, "schedd", [&](Error&) {
    handled_by = "schedd";
    return Disposition::kHandled;
  });
  RouteOutcome out = router.route(Error(ErrorKind::kOutOfMemory));
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(handled_by, "jvm");
}

TEST(ScopeRouter, EscalatesToNearestEnclosingScope) {
  ScopeRouter router;
  std::string handled_by;
  router.register_handler(ErrorScope::kJob, "schedd", [&](Error&) {
    handled_by = "schedd";
    return Disposition::kHandled;
  });
  // file-scope error, but nothing manages file/program/...: the schedd is
  // the nearest enclosing manager.
  RouteOutcome out = router.route(Error(ErrorKind::kFileNotFound));
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(handled_by, "schedd");
  ASSERT_EQ(out.path.size(), 1u);
  EXPECT_EQ(out.path[0].scope, ErrorScope::kJob);
}

TEST(ScopeRouter, PropagationWidensAndWalksUp) {
  ScopeRouter router;
  std::vector<std::string> visits;
  router.register_handler(ErrorScope::kVirtualMachine, "jvm", [&](Error&) {
    visits.push_back("jvm");
    return Disposition::kPropagate;
  });
  router.register_handler(ErrorScope::kRemoteResource, "starter",
                          [&](Error&) {
                            visits.push_back("starter");
                            return Disposition::kPropagate;
                          });
  router.register_handler(ErrorScope::kJob, "schedd", [&](Error& e) {
    visits.push_back("schedd");
    EXPECT_EQ(e.scope(), ErrorScope::kJob);  // widened on the way up
    return Disposition::kHandled;
  });
  RouteOutcome out = router.route(Error(ErrorKind::kOutOfMemory));
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(visits, (std::vector<std::string>{"jvm", "starter", "schedd"}));
}

TEST(ScopeRouter, UnroutableIsReportedNotDropped) {
  PrincipleAudit::global().reset();  // esg-lint: allow(lint/global-singleton)
  ScopeRouter router;
  RouteOutcome out = router.route(Error(ErrorKind::kOutOfMemory));
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(PrincipleAudit::global().violated(Principle::kP3), 1u);  // esg-lint: allow(lint/global-singleton)
}

TEST(ScopeRouter, MaskedStopsPropagation) {
  ScopeRouter router;
  bool upper_called = false;
  router.register_handler(ErrorScope::kNetwork, "retrier", [&](Error&) {
    return Disposition::kMasked;
  });
  router.register_handler(ErrorScope::kJob, "schedd", [&](Error&) {
    upper_called = true;
    return Disposition::kHandled;
  });
  RouteOutcome out = router.route(Error(ErrorKind::kConnectionLost));
  EXPECT_TRUE(out.delivered);
  EXPECT_FALSE(upper_called);
  EXPECT_EQ(out.path[0].disposition, Disposition::kMasked);
}

TEST(ScopeRouter, UnregisterOpensRoutingHole) {
  // A daemon going away (restart, crash) unregisters its scope; until the
  // replacement registers, errors of that scope fall into a window.
  PrincipleAudit::global().reset();  // esg-lint: allow(lint/global-singleton)
  ScopeRouter router;
  router.register_handler(ErrorScope::kVirtualMachine, "jvm",
                          [](Error&) { return Disposition::kHandled; });
  EXPECT_TRUE(router.route(Error(ErrorKind::kOutOfMemory)).delivered);

  router.unregister(ErrorScope::kVirtualMachine);
  RouteOutcome out = router.route(Error(ErrorKind::kOutOfMemory));
  EXPECT_FALSE(out.delivered);
  EXPECT_TRUE(out.path.empty());
  EXPECT_GE(PrincipleAudit::global().violated(Principle::kP3), 1u);  // esg-lint: allow(lint/global-singleton)
  EXPECT_FALSE(router.has_handler(ErrorScope::kVirtualMachine));
}

TEST(ScopeRouter, ReRegistrationReplacesRestartedDaemon) {
  // The restarted daemon takes the scope over: exactly one handler per
  // scope, and the newcomer wins.
  ScopeRouter router;
  std::vector<std::string> visits;
  router.register_handler(ErrorScope::kJob, "schedd-1", [&](Error&) {
    visits.push_back("schedd-1");
    return Disposition::kHandled;
  });
  router.register_handler(ErrorScope::kJob, "schedd-2", [&](Error&) {
    visits.push_back("schedd-2");
    return Disposition::kHandled;
  });
  ASSERT_NE(router.handler_name(ErrorScope::kJob), nullptr);
  EXPECT_EQ(*router.handler_name(ErrorScope::kJob), "schedd-2");

  RouteOutcome out = router.route(Error(ErrorKind::kBadJobDescription));
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(visits, (std::vector<std::string>{"schedd-2"}));
}

TEST(ScopeRouter, EscalationNeverNarrows) {
  // Propagation walks strictly upward: a handler below the error's scope is
  // never consulted, and the error's scope never shrinks along the path.
  ScopeRouter router;
  bool file_called = false;
  router.register_handler(ErrorScope::kFile, "program", [&](Error&) {
    file_called = true;
    return Disposition::kHandled;
  });
  router.register_handler(ErrorScope::kRemoteResource, "starter",
                          [](Error&) { return Disposition::kPropagate; });
  router.register_handler(ErrorScope::kPool, "user",
                          [](Error&) { return Disposition::kHandled; });

  RouteOutcome out = router.route(Error(ErrorKind::kJvmMisconfigured));
  EXPECT_TRUE(out.delivered);
  EXPECT_FALSE(file_called);
  ASSERT_EQ(out.path.size(), 2u);
  EXPECT_EQ(out.path[0].scope, ErrorScope::kRemoteResource);
  EXPECT_EQ(out.path[1].scope, ErrorScope::kPool);
  int prev = -1;
  for (const RouteStep& step : out.path) {
    EXPECT_GT(scope_rank(step.scope), prev);
    prev = scope_rank(step.scope);
  }
  EXPECT_EQ(out.final_error.scope(), ErrorScope::kPool);
}

// ---- ScopeEscalator ----

TEST(Escalator, NoRulesNoChange) {
  const ScopeEscalator e;
  EXPECT_EQ(e.scope_after(ErrorScope::kNetwork, SimTime::hours(100)),
            ErrorScope::kNetwork);
}

TEST(Escalator, GridDefaultsWidenWithTime) {
  // §5: one second of failure is network scope; persistence widens it.
  const ScopeEscalator e = ScopeEscalator::grid_defaults();
  EXPECT_EQ(e.scope_after(ErrorScope::kNetwork, SimTime::sec(1)),
            ErrorScope::kNetwork);
  EXPECT_EQ(e.scope_after(ErrorScope::kNetwork, SimTime::sec(30)),
            ErrorScope::kRemoteResource);
  EXPECT_EQ(e.scope_after(ErrorScope::kNetwork, SimTime::minutes(11)),
            ErrorScope::kCluster);
  EXPECT_EQ(e.scope_after(ErrorScope::kNetwork, SimTime::hours(7)),
            ErrorScope::kPool);
}

TEST(Escalator, EscalateAppliesToError) {
  const ScopeEscalator e = ScopeEscalator::grid_defaults();
  Error err(ErrorKind::kConnectionTimedOut);
  const Error widened =
      e.escalate(std::move(err), SimTime::zero(), SimTime::minutes(1));
  EXPECT_EQ(widened.scope(), ErrorScope::kRemoteResource);
}

TEST(Escalator, NeverNarrows) {
  ScopeEscalator e;
  e.add_rule({ErrorScope::kJob, SimTime::sec(1), ErrorScope::kFile});
  EXPECT_EQ(e.scope_after(ErrorScope::kJob, SimTime::sec(5)),
            ErrorScope::kJob);
}

// ---- detectors ----

TEST(Detect, ValidatorFlagsImplicitError) {
  const OutputValidator<int> validator("non-negative",
                                       [](const int& v) { return v >= 0; });
  EXPECT_FALSE(validator.check(3).has_value());
  const auto detected = validator.check(-1);
  ASSERT_TRUE(detected.has_value());
  EXPECT_EQ(detected->scope(), ErrorScope::kProgram);
}

TEST(Detect, RedundantVoteMasksMinorityCorruption) {
  int call = 0;
  std::function<Result<int>()> run = [&]() -> Result<int> {
    ++call;
    return call == 2 ? 999 : 42;  // one silently wrong copy
  };
  Result<int> r = redundant_vote(run, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Detect, RedundantVoteRefusesWithoutMajority) {
  int call = 0;
  std::function<Result<int>()> run = [&]() -> Result<int> {
    return ++call;  // all different
  };
  Result<int> r = redundant_vote(run, 2);
  EXPECT_FALSE(r.ok());
}

TEST(Detect, RedundantVoteSurfacesAllFailures) {
  std::function<Result<int>()> run = []() -> Result<int> {
    return Error(ErrorKind::kIoError);
  };
  Result<int> r = redundant_vote(run, 3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind(), ErrorKind::kIoError);
}

// ---- audit ----

TEST(Audit, CountsPerPrinciple) {
  PrincipleAudit::global().reset();  // esg-lint: allow(lint/global-singleton)
  PrincipleAudit::global().record(Principle::kP1, AuditOutcome::kApplied, "a");  // esg-lint: allow(lint/global-singleton)
  PrincipleAudit::global().record(Principle::kP2, AuditOutcome::kViolated, "b");  // esg-lint: allow(lint/global-singleton)
  PrincipleAudit::global().record(Principle::kP2, AuditOutcome::kViolated, "c");  // esg-lint: allow(lint/global-singleton)
  EXPECT_EQ(PrincipleAudit::global().applied(Principle::kP1), 1u);  // esg-lint: allow(lint/global-singleton)
  EXPECT_EQ(PrincipleAudit::global().violated(Principle::kP2), 2u);  // esg-lint: allow(lint/global-singleton)
  EXPECT_EQ(PrincipleAudit::global().applied(Principle::kP3), 0u);  // esg-lint: allow(lint/global-singleton)
}

TEST(Audit, EventLogIsBounded) {
  PrincipleAudit::global().reset();  // esg-lint: allow(lint/global-singleton)
  PrincipleAudit::global().set_event_capacity(8);  // esg-lint: allow(lint/global-singleton)
  for (int i = 0; i < 100; ++i) {
    PrincipleAudit::global().record(Principle::kP4, AuditOutcome::kApplied,  // esg-lint: allow(lint/global-singleton)
                                    "x");
  }
  EXPECT_LE(PrincipleAudit::global().events().size(), 8u);  // esg-lint: allow(lint/global-singleton)
  EXPECT_EQ(PrincipleAudit::global().applied(Principle::kP4), 100u);  // esg-lint: allow(lint/global-singleton)
  PrincipleAudit::global().set_event_capacity(4096);  // esg-lint: allow(lint/global-singleton)
}

}  // namespace
}  // namespace esg
