// Unit tests for the daemon substrate: wire format, RPC channel, job
// serialization, matchmaker, startd claim protocol.
#include <gtest/gtest.h>

#include "daemons/matchmaker.hpp"
#include "daemons/rpc.hpp"
#include "daemons/startd.hpp"
#include "daemons/starter.hpp"
#include "daemons/wire.hpp"

namespace esg::daemons {
namespace {

// ---- wire ----

TEST(Wire, RoundTrip) {
  WireMessage msg;
  msg.command = "TEST_CMD";
  msg.body.set("A", 1);
  msg.body.set("S", "hello");
  Result<WireMessage> back = WireMessage::parse(msg.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().command, "TEST_CMD");
  EXPECT_EQ(back.value().body.eval_int("A"), 1);
  EXPECT_EQ(back.value().body.eval_string("S"), "hello");
}

TEST(Wire, RejectsGarbage) {
  EXPECT_FALSE(WireMessage::parse("").ok());
  EXPECT_FALSE(WireMessage::parse("CMD\nnot [ valid").ok());
}

// ---- job serialization ----

TEST(JobSerialization, FullAdRoundTrip) {
  JobDescription job;
  job.id = JobId{5};
  job.owner = "alice";
  job.program = jvm::ProgramBuilder("Sim").compute(SimTime::sec(1)).build();
  job.requirements = "TARGET.HasJava =?= true && TARGET.Memory >= 64";
  job.rank = "TARGET.Memory";
  job.input_files = {"/home/a/in1", "/home/a/in2"};
  job.output_files = {"result.dat"};

  Result<classad::ClassAd> ad = job.to_full_ad();
  ASSERT_TRUE(ad.ok());
  Result<JobDescription> back = JobDescription::from_ad(ad.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().id, job.id);
  EXPECT_EQ(back.value().owner, "alice");
  EXPECT_EQ(back.value().input_files, job.input_files);
  EXPECT_EQ(back.value().output_files, job.output_files);
  EXPECT_EQ(back.value().program.main_class, "Sim");
  EXPECT_TRUE(back.value().program.verifies());
}

TEST(JobSerialization, BadRequirementsRejected) {
  JobDescription job;
  job.requirements = "this is (not a valid expression";
  EXPECT_FALSE(job.to_summary_ad().ok());
}

TEST(JobSerialization, MissingImageRejected) {
  classad::ClassAd ad;
  ad.set("JobId", 1);
  EXPECT_FALSE(JobDescription::from_ad(ad).ok());
}

TEST(ExecutionSummaryTest, ProgramArmRoundTrip) {
  jvm::ResultFile rf;
  rf.exit_by = jvm::ResultFile::ExitBy::kSystemExit;
  rf.exit_code = 3;
  ExecutionSummary s = ExecutionSummary::program(rf, "exec1", 12.5);
  Result<ExecutionSummary> back = ExecutionSummary::from_ad(s.to_ad());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().have_program_result);
  EXPECT_EQ(back.value().program_result.exit_code, 3);
  EXPECT_EQ(back.value().machine, "exec1");
  EXPECT_DOUBLE_EQ(back.value().cpu_seconds, 12.5);
}

TEST(ExecutionSummaryTest, EnvironmentArmKeepsScopeAndLabels) {
  ExecutionSummary s = ExecutionSummary::environment(
      Error(ErrorKind::kJvmMisconfigured, ErrorScope::kRemoteResource, "bad")
          .with_label("injected", "jvm-misconfig"),
      "exec2");
  Result<ExecutionSummary> back = ExecutionSummary::from_ad(s.to_ad());
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back.value().environment_error.has_value());
  EXPECT_EQ(back.value().environment_error->scope(),
            ErrorScope::kRemoteResource);
  ASSERT_NE(back.value().environment_error->label("injected"), nullptr);
}

TEST(ExecutionSummaryTest, EmptySummaryRejected) {
  classad::ClassAd ad;
  ad.set("HaveProgramResult", false);
  EXPECT_FALSE(ExecutionSummary::from_ad(ad).ok());
}

// ---- rpc ----

struct RpcFixture {
  sim::Engine engine{23};
  net::NetworkFabric fabric{engine};
  std::shared_ptr<RpcChannel> server;
  std::shared_ptr<RpcChannel> client;

  explicit RpcFixture(SimTime timeout = SimTime::sec(5)) {
    EXPECT_TRUE(fabric
                    .listen({"s", 1},
                            [this, timeout](net::Endpoint ep) {
                              server = std::make_shared<RpcChannel>(
                                  engine, std::move(ep), timeout);
                            })
                    .ok());
    rpc_connect(engine, fabric, "c", {"s", 1}, timeout,
                [this](Result<std::shared_ptr<RpcChannel>> ch) {
                  ASSERT_TRUE(ch.ok());
                  client = std::move(ch).value();
                });
    engine.run();
  }
};

TEST(Rpc, RequestReply) {
  RpcFixture f;
  f.server->set_server(
      [](const std::string& cmd, const classad::ClassAd& body,
         std::function<void(classad::ClassAd)> reply) {
        EXPECT_EQ(cmd, "ADD");
        classad::ClassAd out;
        out.set("Sum", body.eval_int("A") + body.eval_int("B"));
        reply(std::move(out));
      },
      nullptr);
  classad::ClassAd req;
  req.set("A", 2);
  req.set("B", 3);
  std::int64_t sum = 0;
  f.client->request("ADD", std::move(req), [&](Result<classad::ClassAd> r) {
    ASSERT_TRUE(r.ok());
    sum = r.value().eval_int("Sum");
  });
  f.engine.run();
  EXPECT_EQ(sum, 5);
}

TEST(Rpc, NotifyIsOneWay) {
  RpcFixture f;
  std::string got;
  f.server->set_server(nullptr, [&](const std::string& cmd,
                                    const classad::ClassAd& body) {
    got = cmd + ":" + body.eval_string("X");
  });
  classad::ClassAd body;
  body.set("X", "y");
  f.client->notify("PING", std::move(body));
  f.engine.run();
  EXPECT_EQ(got, "PING:y");
}

TEST(Rpc, TimeoutBreaksChannelAndFailsRequest) {
  RpcFixture f(SimTime::sec(2));
  // Server installed with a handler that never replies.
  f.server->set_server(
      [](const std::string&, const classad::ClassAd&,
         std::function<void(classad::ClassAd)>) { /* swallow */ },
      nullptr);
  bool failed = false;
  bool broken = false;
  f.client->set_on_broken([&](const Error&) { broken = true; });
  f.client->request("HANG", {}, [&](Result<classad::ClassAd> r) {
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().kind(), ErrorKind::kConnectionTimedOut);
    failed = true;
  });
  f.engine.run();
  EXPECT_TRUE(failed);
  EXPECT_TRUE(broken);
  EXPECT_FALSE(f.client->is_open());
}

TEST(Rpc, BrokenChannelFailsOutstandingRequests) {
  RpcFixture f;
  f.server->set_server(
      [](const std::string&, const classad::ClassAd&,
         std::function<void(classad::ClassAd)>) {},
      nullptr);
  bool failed = false;
  f.client->request("X", {}, [&](Result<classad::ClassAd> r) {
    failed = !r.ok();
  });
  f.client->abort(Error(ErrorKind::kConnectionLost, "test"));
  f.engine.run();
  EXPECT_TRUE(failed);
}

TEST(Rpc, GarbageOnChannelEscapes) {
  // A peer that speaks garbage invalidates the RPC mechanism: the channel
  // must break (process scope), not limp along.
  sim::Engine engine{29};
  net::NetworkFabric fabric{engine};
  net::Endpoint raw_server;
  std::shared_ptr<RpcChannel> client;
  ASSERT_TRUE(fabric
                  .listen({"s", 1},
                          [&](net::Endpoint ep) { raw_server = ep; })
                  .ok());
  rpc_connect(engine, fabric, "c", {"s", 1}, SimTime::sec(5),
              [&](Result<std::shared_ptr<RpcChannel>> ch) {
                client = std::move(ch).value();
              });
  engine.run();
  bool broken = false;
  client->set_on_broken([&](const Error& e) {
    broken = true;
    EXPECT_EQ(e.kind(), ErrorKind::kProtocolError);
  });
  (void)raw_server.send("complete garbage [[[");
  engine.run();
  EXPECT_TRUE(broken);
}

TEST(Rpc, RequestOnClosedChannelFailsImmediately) {
  RpcFixture f;
  f.client->close();
  bool failed = false;
  f.client->request("X", {}, [&](Result<classad::ClassAd> r) {
    failed = !r.ok();
    EXPECT_EQ(r.error().kind(), ErrorKind::kConnectionLost);
  });
  EXPECT_TRUE(failed);
}

// ---- matchmaker + startd integration ----

TEST(MatchmakerTest, StartdAdvertisesAndExpires) {
  sim::Engine engine{31};
  net::NetworkFabric fabric{engine};
  Ports ports;
  Timeouts timeouts;
  Matchmaker mm(engine, fabric, "central", ports, timeouts);
  mm.boot();

  fs::SimFileSystem machine_fs("exec0");
  StartdConfig cfg;
  Startd startd(engine, fabric, machine_fs, "exec0", cfg, {},
                {"central", ports.matchmaker}, ports, timeouts);
  startd.boot();

  engine.run(SimTime::sec(12));
  EXPECT_EQ(mm.known_startds(), 1u);

  // Stop the startd; its ad must eventually expire.
  startd.shutdown();
  engine.run(engine.now() + timeouts.ad_lifetime +
             timeouts.matchmaker_interval * std::int64_t{2} + SimTime::sec(1));
  EXPECT_EQ(mm.known_startds(), 0u);
}

TEST(StartdTest, SelfTestSuppressesBrokenJavaAd) {
  sim::Engine engine{37};
  net::NetworkFabric fabric{engine};
  Ports ports;
  Timeouts timeouts;
  fs::SimFileSystem machine_fs("exec0");
  StartdConfig cfg;
  cfg.owner_asserts_java = true;
  cfg.jvm.classpath_ok = false;  // the owner is wrong
  DisciplineConfig discipline = DisciplineConfig::scoped();
  discipline.startd_selftest = true;
  Startd startd(engine, fabric, machine_fs, "exec0", cfg, discipline,
                {"central", ports.matchmaker}, ports, timeouts);
  startd.boot();
  engine.run(SimTime::sec(5));
  EXPECT_FALSE(startd.advertises_java());
  EXPECT_FALSE(startd.machine_ad().contains("HasJava"));
}

TEST(StartdTest, WithoutSelfTestOwnerAssertionWins) {
  sim::Engine engine{41};
  net::NetworkFabric fabric{engine};
  Ports ports;
  fs::SimFileSystem machine_fs("exec0");
  StartdConfig cfg;
  cfg.owner_asserts_java = true;
  cfg.jvm.classpath_ok = false;  // broken, but nobody checks
  Startd startd(engine, fabric, machine_fs, "exec0", cfg,
                DisciplineConfig::scoped(), {"central", ports.matchmaker},
                ports, {});
  startd.boot();
  engine.run(SimTime::sec(2));
  EXPECT_TRUE(startd.advertises_java());
}

TEST(StartdTest, SelfTestPassesOnHealthyJava) {
  sim::Engine engine{43};
  net::NetworkFabric fabric{engine};
  Ports ports;
  fs::SimFileSystem machine_fs("exec0");
  StartdConfig cfg;
  DisciplineConfig discipline = DisciplineConfig::scoped();
  discipline.startd_selftest = true;
  Startd startd(engine, fabric, machine_fs, "exec0", cfg, discipline,
                {"central", ports.matchmaker}, ports, {});
  startd.boot();
  engine.run(SimTime::sec(2));
  EXPECT_TRUE(startd.advertises_java());
}

TEST(StartdTest, PolicyRefusalDeniesClaim) {
  sim::Engine engine{47};
  net::NetworkFabric fabric{engine};
  Ports ports;
  fs::SimFileSystem machine_fs("exec0");
  StartdConfig cfg;
  cfg.start_expr = "TARGET.Owner == \"vip\"";  // picky owner
  Startd startd(engine, fabric, machine_fs, "exec0", cfg,
                DisciplineConfig::scoped(), {"central", ports.matchmaker},
                ports, {});
  startd.boot();
  engine.run(SimTime::sec(1));

  std::shared_ptr<RpcChannel> channel;
  rpc_connect(engine, fabric, "submit0", startd.address(), SimTime::sec(5),
              [&](Result<std::shared_ptr<RpcChannel>> ch) {
                channel = std::move(ch).value();
              });
  engine.run(engine.now() + SimTime::sec(2));
  ASSERT_NE(channel, nullptr);

  JobDescription job;
  job.id = JobId{1};
  job.owner = "peasant";
  job.program = jvm::ProgramBuilder("P").build();
  classad::ClassAd body;
  body.insert("Job", std::make_unique<classad::Literal>(classad::Value::ad(
                         std::make_shared<classad::ClassAd>(
                             job.to_summary_ad().value()))));
  bool denied = false;
  channel->request(kCmdRequestClaim, std::move(body),
                   [&](Result<classad::ClassAd> r) {
                     ASSERT_TRUE(r.ok());
                     denied = !r.value().eval_bool("Granted");
                   });
  engine.run(engine.now() + SimTime::sec(2));
  EXPECT_TRUE(denied);
  EXPECT_FALSE(startd.claimed());
}

}  // namespace
}  // namespace esg::daemons

namespace esg::daemons {
namespace {

TEST(StartdTest, UnactivatedClaimExpires) {
  sim::Engine engine{67};
  net::NetworkFabric fabric{engine};
  Ports ports;
  fs::SimFileSystem machine_fs("exec0");
  Startd startd(engine, fabric, machine_fs, "exec0", StartdConfig{},
                DisciplineConfig::scoped(), {"central", ports.matchmaker},
                ports, {});
  startd.boot();
  engine.run(SimTime::sec(1));

  // Claim the machine, then never activate (the shadow "died").
  std::shared_ptr<RpcChannel> channel;
  rpc_connect(engine, fabric, "submit0", startd.address(), SimTime::sec(5),
              [&](Result<std::shared_ptr<RpcChannel>> ch) {
                channel = std::move(ch).value();
              });
  engine.run(engine.now() + SimTime::sec(2));
  ASSERT_NE(channel, nullptr);
  JobDescription job;
  job.id = JobId{1};
  job.program = jvm::ProgramBuilder("P").build();
  classad::ClassAd body;
  body.insert("Job", std::make_unique<classad::Literal>(classad::Value::ad(
                         std::make_shared<classad::ClassAd>(
                             job.to_summary_ad().value()))));
  bool granted = false;
  channel->request(kCmdRequestClaim, std::move(body),
                   [&](Result<classad::ClassAd> r) {
                     granted = r.ok() && r.value().eval_bool("Granted");
                   });
  engine.run(engine.now() + SimTime::sec(2));
  ASSERT_TRUE(granted);
  EXPECT_TRUE(startd.claimed());
  // After the expiry window the machine frees itself.
  engine.run(engine.now() + SimTime::sec(90));
  EXPECT_FALSE(startd.claimed());
}

TEST(StartdTest, ReleaseClaimNotifyFreesTheMachine) {
  sim::Engine engine{68};
  net::NetworkFabric fabric{engine};
  Ports ports;
  fs::SimFileSystem machine_fs("exec0");
  Startd startd(engine, fabric, machine_fs, "exec0", StartdConfig{},
                DisciplineConfig::scoped(), {"central", ports.matchmaker},
                ports, {});
  startd.boot();
  engine.run(SimTime::sec(1));

  std::shared_ptr<RpcChannel> channel;
  rpc_connect(engine, fabric, "submit0", startd.address(), SimTime::sec(5),
              [&](Result<std::shared_ptr<RpcChannel>> ch) {
                channel = std::move(ch).value();
              });
  engine.run(engine.now() + SimTime::sec(2));
  JobDescription job;
  job.id = JobId{1};
  job.program = jvm::ProgramBuilder("P").build();
  classad::ClassAd body;
  body.insert("Job", std::make_unique<classad::Literal>(classad::Value::ad(
                         std::make_shared<classad::ClassAd>(
                             job.to_summary_ad().value()))));
  std::int64_t claim_id = 0;
  channel->request(kCmdRequestClaim, std::move(body),
                   [&](Result<classad::ClassAd> r) {
                     ASSERT_TRUE(r.ok());
                     claim_id = r.value().eval_int("ClaimId");
                   });
  engine.run(engine.now() + SimTime::sec(2));
  ASSERT_TRUE(startd.claimed());

  classad::ClassAd release;
  release.set("ClaimId", claim_id);
  channel->notify(kCmdReleaseClaim, std::move(release));
  engine.run(engine.now() + SimTime::sec(2));
  EXPECT_FALSE(startd.claimed());
}

}  // namespace
}  // namespace esg::daemons

namespace esg::daemons {
namespace {

TEST(ProxyBackendTest, MixedRenameRefusedAndDeadChannelIsScoped) {
  fs::SimFileSystem fs("exec0");
  ASSERT_TRUE(fs.mkdirs("/scratch").ok());
  ProxyBackend backend(fs, "/scratch", nullptr);

  chirp::Response got;
  backend.op_rename("local.txt", "/remote/x",
                    [&](chirp::Response r) { got = std::move(r); });
  EXPECT_EQ(got.code, chirp::Code::kNotAllowed);

  // Remote operations with no shadow channel fail with a scoped
  // disconnection, not a crash.
  backend.op_stat("/remote/x", [&](chirp::Response r) { got = std::move(r); });
  EXPECT_EQ(got.code, chirp::Code::kDisconnected);
  ASSERT_TRUE(got.scope.has_value());
  EXPECT_EQ(*got.scope, ErrorScope::kNetwork);
}

TEST(ProxyBackendTest, LocalOpsRouteToScratchSandbox) {
  fs::SimFileSystem fs("exec0");
  ASSERT_TRUE(fs.mkdirs("/scratch").ok());
  ProxyBackend backend(fs, "/scratch", nullptr);
  chirp::Response got;
  backend.op_open("file.txt", "w",
                  [&](chirp::Response r) { got = std::move(r); });
  ASSERT_EQ(got.code, chirp::Code::kOk);
  const std::int64_t fd = got.value;
  backend.op_write(fd, "hello", [&](chirp::Response r) { got = std::move(r); });
  ASSERT_EQ(got.code, chirp::Code::kOk);
  backend.op_close(fd, [&](chirp::Response r) { got = std::move(r); });
  ASSERT_EQ(got.code, chirp::Code::kOk);
  EXPECT_EQ(fs.read_file("/scratch/file.txt").value(), "hello");
}

}  // namespace
}  // namespace esg::daemons
