// Tests for the flock subsystem: federation overflow scheduling, the
// cross-pool scope contract (remote machine faults consumed at *cluster*
// scope, severed inter-pool trunks at *network* scope, and neither ever
// exposed to a user job), the netdata-style streaming telemetry path
// (ChildStreamer -> parent Aggregator, exactly-once after partitions), the
// federated chaos campaign's thread-count-independent determinism, and the
// golden parent dashboard.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diff.hpp"
#include "analysis/verify.hpp"
#include "chaos/campaign.hpp"
#include "chaos/oracle.hpp"
#include "chaos/plan.hpp"
#include "common/rng.hpp"
#include "flock/chaos.hpp"
#include "flock/federation.hpp"
#include "flock/stream.hpp"
#include "obs/dashboard.hpp"
#include "pool/topology.hpp"
#include "pool/workload.hpp"

namespace esg::flock {
namespace {

chaos::PoolShape federated_shape(int pools = 3, int jobs = 12) {
  chaos::PoolShape shape;
  shape.pools = pools;
  shape.machines = 2;
  shape.jobs = jobs;
  return shape;
}

/// Build, stage, and submit the standard federated cell workload (the same
/// recipe make_federated_cell uses), returning the booted federation.
void run_federated(Federation& federation, const chaos::FaultPlan& plan,
                   bool* finished = nullptr) {
  federation.boot();
  pool::stage_workload_inputs(*federation.submit_fs("home"));
  pool::WorkloadOptions workload;
  workload.count = plan.shape.jobs;
  workload.mean_compute = plan.shape.mean_compute;
  workload.remote_io_fraction = 0.25;
  workload.remote_write_fraction = 0.25;
  Rng rng = Rng(plan.seed).fork("chaos.workload");
  for (auto& job : pool::make_workload(workload, rng)) {
    federation.submit(0, std::move(job));
  }
  FederatedInjector::arm(federation, plan);
  const bool done = federation.run_until_done(plan.shape.limit);
  if (finished != nullptr) *finished = done;
}

// ---- federation basics ----

TEST(Federation, StarvedHomePoolOverflowsViaFlocking) {
  // No faults at all: the home pool has one machine, so a 12-job batch
  // must overflow to the remote pools to finish inside the budget.
  chaos::FaultPlan plan;
  plan.seed = 42;
  plan.shape = federated_shape();
  Federation federation(federated_cell_config(plan));
  bool finished = false;
  run_federated(federation, plan, &finished);
  EXPECT_TRUE(finished);
  const auto* home = federation.schedd("home");
  ASSERT_NE(home, nullptr);
  EXPECT_GT(home->flock_attempts(), 0u)
      << "a starved home pool should negotiate with remote matchmakers";
  const pool::PoolReport report = federation.report();
  EXPECT_EQ(report.jobs_total, 12);
  EXPECT_EQ(report.unfinished, 0);
  EXPECT_EQ(report.completed_genuine + report.completed_program_error, 12);
}

TEST(Federation, PoolNamesAndAccessorsAreStable) {
  chaos::FaultPlan plan;
  plan.seed = 1;
  plan.shape = federated_shape(4);
  Federation federation(federated_cell_config(plan));
  const std::vector<std::string> names = federation.pool_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "home");
  EXPECT_EQ(names[1], "p1");
  EXPECT_EQ(names[3], "p3");
  for (const std::string& name : names) {
    EXPECT_NE(federation.schedd(name), nullptr) << name;
    EXPECT_NE(federation.streamer(name), nullptr) << name;
  }
  EXPECT_NE(federation.parent(), nullptr);
  EXPECT_EQ(federation.schedd("nope"), nullptr);
}

// ---- cross-pool scope semantics ----

TEST(FlockScope, RemoteFaultsConsumedAtClusterScopeNotByJobs) {
  // Seed 1234's generated plan crashes a remote startd mid-lease and
  // severs a home<->remote trunk (verified by the assertions below, so a
  // generator change that stops covering either fault flags loudly).
  const chaos::FaultPlan plan = make_federated_plan(1234, federated_shape());
  Federation federation(federated_cell_config(plan));
  bool finished = false;
  run_federated(federation, plan, &finished);
  EXPECT_TRUE(finished);

  const auto* home = federation.schedd("home");
  ASSERT_NE(home, nullptr);
  // The cross-pool contract: a remote machine's death is machine-scope
  // inside its own pool but *cluster*-scope at the home schedd, and a
  // severed inter-pool trunk is *network*-scope. Both are consumed by the
  // flock layer / schedd — never handed to a user job as its result.
  EXPECT_GE(home->cluster_errors_consumed(), 1u);
  EXPECT_GE(home->network_errors_consumed(), 1u);

  const pool::PoolReport report = federation.report();
  EXPECT_EQ(report.user_incidental_exposures, 0)
      << "scoped federation must not launder environmental errors into "
         "job results";
  EXPECT_EQ(report.unfinished, 0);

  const chaos::OracleReport oracles = chaos::evaluate_oracles(
      report, finished, federation.recorder().events());
  EXPECT_TRUE(oracles.ok()) << oracles.str();
}

TEST(FlockScope, SeveredTrunkAloneIsANetworkScopeError) {
  // A hand-built plan with exactly one sever/reconnect pair: the first
  // "real" network-scope error in the codebase (the paper's taxonomy has
  // network above process, below remote-resource).
  chaos::FaultPlan plan;
  plan.seed = 99;
  plan.shape = federated_shape();
  chaos::FaultAction sever;
  sever.at = SimTime::sec(45);
  sever.type = chaos::FaultActionType::kSever;
  sever.host = "home.submit";
  sever.peer = "p1.central";
  chaos::FaultAction reconnect;
  reconnect.at = SimTime::sec(95);
  reconnect.type = chaos::FaultActionType::kReconnect;
  reconnect.host = "home.submit";
  reconnect.peer = "p1.central";
  plan.actions = {sever, reconnect};

  Federation federation(federated_cell_config(plan));
  bool finished = false;
  run_federated(federation, plan, &finished);
  EXPECT_TRUE(finished);
  const auto* home = federation.schedd("home");
  ASSERT_NE(home, nullptr);
  EXPECT_GE(home->network_errors_consumed(), 1u)
      << "a severed inter-pool trunk must surface as a network-scope "
         "error at the home schedd";
  EXPECT_EQ(federation.report().user_incidental_exposures, 0);
}

TEST(FlockScope, NaiveDisciplineLaundersRemoteFaults) {
  // The same generated plan under the naive discipline: remote faults
  // reach user jobs as their result, which the attribution oracle flags.
  chaos::FaultPlan plan = make_federated_plan(1234, federated_shape());
  plan.shape.discipline = "naive";
  Federation federation(federated_cell_config(plan));
  bool finished = false;
  run_federated(federation, plan, &finished);
  const pool::PoolReport report = federation.report();
  const chaos::OracleReport oracles = chaos::evaluate_oracles(
      report, finished, federation.recorder().events());
  EXPECT_FALSE(oracles.ok())
      << "naive discipline should fail at least one resilience oracle "
         "under cross-pool faults";
}

// ---- streaming telemetry ----

TEST(FlockStream, ParentAggregateConvergesToRecorderTotals) {
  // Whatever faults fire — including severed parent trunks forcing
  // retransmits — every recorded span must reach the parent exactly once.
  for (std::uint64_t seed : {7ull, 1234ull, 31337ull}) {
    const chaos::FaultPlan plan =
        make_federated_plan(seed, federated_shape());
    Federation federation(federated_cell_config(plan));
    run_federated(federation, plan);
    const Aggregator* parent = federation.parent();
    ASSERT_NE(parent, nullptr);
    std::uint64_t parent_events = 0;
    for (const auto& [name, feed] : parent->feeds()) {
      parent_events += feed.events;
    }
    EXPECT_EQ(parent_events, federation.recorder().total_recorded())
        << "seed " << seed;
    EXPECT_EQ(parent->malformed_chunks(), 0u);
    // Drained means every streamer's chunks were acked (retransmits
    // included), so duplicates at the parent were deduped, not lost.
    for (const std::string& name : federation.pool_names()) {
      const ChildStreamer* streamer = federation.streamer(name);
      ASSERT_NE(streamer, nullptr);
      EXPECT_EQ(streamer->unacked(), 0u) << name << " seed " << seed;
    }
  }
}

TEST(FlockStream, FeedsCarryPerPoolProvenance) {
  const chaos::FaultPlan plan = make_federated_plan(1234, federated_shape());
  Federation federation(federated_cell_config(plan));
  run_federated(federation, plan);
  const Aggregator* parent = federation.parent();
  ASSERT_NE(parent, nullptr);
  ASSERT_FALSE(parent->feeds().empty());
  for (const auto& [name, feed] : parent->feeds()) {
    // Every feed is keyed by a pool name the federation knows.
    const auto names = federation.pool_names();
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << "unknown feed " << name;
    EXPECT_GT(feed.chunks, 0u);
    EXPECT_GT(feed.events, 0u);
  }
}

// ---- federated chaos campaign ----

TEST(FlockCampaign, VerdictBytesAreThreadCountIndependent) {
  chaos::CampaignOptions options;
  options.seed = 2026;
  options.plans = 3;
  options.shape = federated_shape();
  options.shrink = false;
  options.triage_reruns = 1;

  options.threads = 1;
  const chaos::CampaignResult serial = run_federated_campaign(options);
  options.threads = 4;
  const chaos::CampaignResult wide = run_federated_campaign(options);

  EXPECT_EQ(serial.str(), wide.str());
  EXPECT_EQ(serial.json(), wide.json());
  EXPECT_EQ(serial.failing, 0) << serial.str();
  // Triage re-ran cells and found byte-stable verdicts: the federated
  // cells are deterministic, so a future red cell is a real bug, not
  // scheduler noise.
  EXPECT_EQ(serial.flaky, 0) << serial.str();
  for (const chaos::CellVerdict& cell : serial.cells) {
    EXPECT_GE(cell.engine_events, 1u);
  }
}

TEST(FlockCampaign, ReplayMatchesCampaignVerdict) {
  const chaos::FaultPlan plan = make_federated_plan(1234, federated_shape());
  const chaos::RunResult a = replay_federated(plan);
  const chaos::RunResult b = replay_federated(plan);
  EXPECT_EQ(a.oracles.str(), b.oracles.str());
  EXPECT_EQ(a.engine_events, b.engine_events);
  EXPECT_TRUE(a.oracles.ok()) << a.oracles.str();
}

// ---- federated topology verification ----

TEST(FlockTopology, ScopedFederatedModelVerifiesClean) {
  const analysis::TopologyModel model = pool::describe_federated_topology(
      daemons::DisciplineConfig::scoped());
  const analysis::AnalysisReport report =
      analysis::ScopeVerifier().verify(model);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(FlockTopology, NaiveFederatedModelLaundersAcrossThePoolBoundary) {
  const analysis::TopologyModel model = pool::describe_federated_topology(
      daemons::DisciplineConfig::naive());
  const analysis::AnalysisReport report =
      analysis::ScopeVerifier().verify(model);
  EXPECT_FALSE(report.ok());
  bool saw_p1 = false;
  for (const analysis::Finding& finding : report.findings) {
    if (finding.rule == "esv/p1-laundering") saw_p1 = true;
  }
  EXPECT_TRUE(saw_p1) << report.str();
}

TEST(FlockTopology, FederatedModelOnlyAddsToTheBasePool) {
  const daemons::DisciplineConfig scoped =
      daemons::DisciplineConfig::scoped();
  const analysis::TopologyDiff diff = analysis::diff_topology_dumps(
      pool::describe_pool_topology(scoped).str(),
      pool::describe_federated_topology(scoped).str());
  // The federated model strictly extends the base pool: the only line it
  // may drop is the "topology: N component(s) ..." summary header, whose
  // counts necessarily grow.
  for (const std::string& line : diff.removed) {
    EXPECT_EQ(line.rfind("topology:", 0), 0u)
        << "federation removed a declaration: " << line;
  }
  EXPECT_FALSE(diff.added.empty());
  bool saw_flock = false;
  for (const std::string& line : diff.added) {
    if (line.find("flock") != std::string::npos) saw_flock = true;
  }
  EXPECT_TRUE(saw_flock);
}

// ---- golden parent dashboard ----

/// Same contract as test_obs's golden helper: compare against a committed
/// file, re-bless with ESG_BLESS=1.
void expect_matches_golden(const std::string& rendered,
                           const std::string& name) {
  const std::string path =
      std::string(ESG_SOURCE_DIR) + "/tests/golden/" + name;
  if (std::getenv("ESG_BLESS") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot bless " << path;
    out << rendered;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with ESG_BLESS=1 to create)";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(rendered, buf.str())
      << "dashboard drifted from " << path
      << "; if intentional, re-bless with ESG_BLESS=1";
}

TEST(FlockGolden, FederatedDashboardIsReproducible) {
  const chaos::FaultPlan plan = make_federated_plan(1234, federated_shape());
  const auto render = [&plan]() {
    Federation federation(federated_cell_config(plan));
    run_federated(federation, plan);
    obs::DashboardOptions options;
    options.color = false;
    return federation.parent()->dashboard_str(options) + "\n" +
           federation.federated_dashboard_json("golden federated");
  };
  const std::string first = render();
  const std::string second = render();
  ASSERT_EQ(first, second) << "parent dashboard must be byte-stable";
  expect_matches_golden(first, "dashboard_federated.txt");
}

}  // namespace
}  // namespace esg::flock
