// Tests for the path-sensitive FlowAnalyzer and the witness compiler: the
// whole-pool flow gates (scoped clean, naive laundering), each esf/ rule
// over a minimal synthetic topology that isolates it, the witness chain
// content, and the compile -> replay -> cross-check loop that turns a
// static laundering finding into a confirmed dynamic experiment.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/flow.hpp"
#include "analysis/topology.hpp"
#include "chaos/plan.hpp"
#include "chaos/witness.hpp"
#include "daemons/config.hpp"
#include "pool/topology.hpp"

namespace esg::analysis {
namespace {

using daemons::DisciplineConfig;

const FlowFinding* first_with_rule(const FlowReport& report,
                                   const std::string& rule) {
  for (const FlowFinding& f : report.findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

bool witness_mentions(const FlowFinding& finding, const std::string& needle) {
  return std::any_of(finding.witness.begin(), finding.witness.end(),
                     [&](const std::string& step) {
                       return step.find(needle) != std::string::npos;
                     });
}

// ---- whole-pool gates ----

TEST(FlowAnalyzer, ScopedPoolFlowIsClean) {
  const FlowReport report = FlowAnalyzer().analyze(
      pool::describe_pool_topology(DisciplineConfig::scoped()));
  EXPECT_TRUE(report.ok()) << report.str();
  EXPECT_GT(report.facts_seeded, 0u);
  EXPECT_GT(report.facts_propagated, report.facts_seeded);
  EXPECT_GT(report.edges_traversed, 0u);
  EXPECT_GT(report.obligations_raised, 0u);
}

TEST(FlowAnalyzer, FederatedScopedFlowIsClean) {
  const FlowReport report = FlowAnalyzer().analyze(
      pool::describe_federated_topology(DisciplineConfig::scoped()));
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(FlowAnalyzer, NaivePoolExhibitsMultiHopLaundering) {
  const FlowReport report = FlowAnalyzer().analyze(
      pool::describe_pool_topology(DisciplineConfig::naive()));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("esf/multi-hop-laundering"));

  // Every laundering finding lands at the terminal, and the witness reads
  // root-first: detection seed, then each boundary crossed, then the
  // terminal arrival still owing the original scope.
  const FlowFinding* laundering =
      first_with_rule(report, "esf/multi-hop-laundering");
  ASSERT_NE(laundering, nullptr);
  EXPECT_EQ(laundering->node, "user.results");
  ASSERT_GE(laundering->witness.size(), 3u) << laundering->str();
  EXPECT_NE(laundering->witness.front().find("detects"), std::string::npos);
  EXPECT_NE(laundering->witness.back().find("reaches terminal user.results"),
            std::string::npos);
  EXPECT_TRUE(witness_mentions(*laundering, "identity destroyed"))
      << laundering->str();
}

// ---- esf/multi-hop-laundering over a minimal synthetic topology ----

TEST(FlowAnalyzer, LaunderedWideProvenanceAtTerminalIsTheFinding) {
  TopologyModel model;
  model.declare_detection(
      {"shadow", "synth.detect", {ErrorKind::kMountOffline}});
  InterfaceDecl mid;
  mid.component = "relay";
  mid.routine = "synth.relay";
  mid.mode = InterfaceMode::kLeak;  // empty contract: everything leaks
  model.declare_interface(std::move(mid));
  InterfaceDecl term;
  term.component = "user";
  term.routine = "synth.results";
  term.terminal = true;
  model.declare_interface(std::move(term));
  model.declare_flow("synth.detect", "synth.relay");
  model.declare_flow("synth.relay", "synth.results");

  const FlowReport report = FlowAnalyzer().analyze(model);
  ASSERT_EQ(report.findings.size(), 1u) << report.str();
  const FlowFinding& f = report.findings[0];
  EXPECT_EQ(f.rule, "esf/multi-hop-laundering");
  EXPECT_EQ(f.node, "synth.results");
  EXPECT_EQ(f.kind, ErrorKind::kMountOffline);
  EXPECT_NE(f.message.find("local-resource"), std::string::npos) << f.str();
  // The full chain: seed, the flow into the relay, the leak hop, the
  // terminal arrival.
  ASSERT_EQ(f.witness.size(), 4u) << f.str();
  EXPECT_NE(f.witness[0].find("synth.detect detects mount-offline"),
            std::string::npos);
  EXPECT_NE(f.witness[1].find("flows into synth.relay"), std::string::npos);
  EXPECT_NE(f.witness[2].find("leaks through synth.relay"),
            std::string::npos);
  EXPECT_NE(f.witness[3].find("still owing local-resource scope"),
            std::string::npos);
}

TEST(FlowAnalyzer, ProgramScopeLaunderingIsTheTerminalsRight) {
  // An exit code collapsing into an exit code loses nothing: provenance at
  // or below the laundering floor (program scope) is not a finding.
  TopologyModel model;
  model.declare_detection(
      {"starter", "synth.detect", {ErrorKind::kExitNonZero}});
  InterfaceDecl mid;
  mid.component = "relay";
  mid.routine = "synth.relay";
  mid.mode = InterfaceMode::kLeak;
  model.declare_interface(std::move(mid));
  InterfaceDecl term;
  term.component = "user";
  term.routine = "synth.results";
  term.terminal = true;
  model.declare_interface(std::move(term));
  model.declare_flow("synth.detect", "synth.relay");
  model.declare_flow("synth.relay", "synth.results");

  const FlowReport report = FlowAnalyzer().analyze(model);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST(FlowAnalyzer, FilterBoundaryConvertsTheFactIntoAnObligation) {
  // A disciplined escape is the opposite of laundering: the fact stops
  // travelling and becomes a routing obligation at the widened scope,
  // which the registered handler keeps live.
  TopologyModel model;
  model.declare_detection(
      {"shadow", "synth.detect", {ErrorKind::kMountOffline}});
  InterfaceDecl gate;
  gate.component = "shadow";
  gate.routine = "synth.gate";
  gate.escape_floor = ErrorScope::kProcess;
  model.declare_interface(std::move(gate));
  model.declare_flow("synth.detect", "synth.gate");
  model.declare_handler("shadow", ErrorScope::kLocalResource);

  const FlowReport report = FlowAnalyzer().analyze(model);
  EXPECT_TRUE(report.ok()) << report.str();
  // Seed obligation plus the escape obligation.
  EXPECT_EQ(report.obligations_raised, 2u);
}

// ---- esf/dead-handler ----

TEST(FlowAnalyzer, HandlerBelowEveryObligationIsDead) {
  TopologyModel model;
  model.declare_detection(
      {"starter", "synth.detect", {ErrorKind::kExitNonZero}});
  // Program-scope obligations route to the program handler; a file-scope
  // handler sits below every obligation and can never be reached.
  model.declare_handler("wrapper", ErrorScope::kProgram);
  model.declare_handler("nobody", ErrorScope::kFile);

  const FlowReport report = FlowAnalyzer().analyze(model);
  ASSERT_EQ(report.count("esf/dead-handler"), 1u) << report.str();
  const FlowFinding* dead = first_with_rule(report, "esf/dead-handler");
  ASSERT_NE(dead, nullptr);
  EXPECT_EQ(dead->component, "nobody");
  EXPECT_NE(dead->node.find("file"), std::string::npos) << dead->node;
}

// ---- esf/unreachable-escalation ----

TEST(FlowAnalyzer, NarrowingAndUnreachedRungsAreFlaggedFiredRungIsNot) {
  TopologyModel model;
  model.declare_detection(
      {"shadow", "synth.detect", {ErrorKind::kMountOffline}});
  model.declare_handler("shadow", ErrorScope::kLocalResource);
  model.declare_handler("pool", ErrorScope::kJob);
  // Fires: local-resource is obligated by the seed.
  model.declare_escalation("esc", ErrorScope::kLocalResource,
                           ErrorScope::kJob);
  // Never fires: nothing raises a network obligation.
  model.declare_escalation("esc", ErrorScope::kNetwork,
                           ErrorScope::kRemoteResource);
  // Can never fire: the monotone closure ignores narrowing rungs.
  model.declare_escalation("esc", ErrorScope::kJob, ErrorScope::kFile);

  const FlowReport report = FlowAnalyzer().analyze(model);
  EXPECT_EQ(report.count("esf/unreachable-escalation"), 2u) << report.str();
  bool narrowing = false;
  bool unreached = false;
  for (const FlowFinding& f : report.findings) {
    if (f.rule != "esf/unreachable-escalation") continue;
    if (f.message.find("narrows") != std::string::npos) narrowing = true;
    if (f.message.find("never reaches network") != std::string::npos ||
        f.message.find("no obligation ever reaches network") !=
            std::string::npos) {
      unreached = true;
    }
  }
  EXPECT_TRUE(narrowing) << report.str();
  EXPECT_TRUE(unreached) << report.str();
}

// ---- esf/redundant-consumption ----

TEST(FlowAnalyzer, BothRedundantConsumptionFormsAreDistinguished) {
  TopologyModel model;
  model.declare_detection({"fs", "synth.detect", {ErrorKind::kDiskFull}});
  // Reached, but kEndOfFile has no producer: a dead contract entry.
  InterfaceDecl reached;
  reached.component = "fs";
  reached.routine = "synth.reached";
  reached.allowed = {ErrorKind::kDiskFull, ErrorKind::kEndOfFile};
  model.declare_interface(std::move(reached));
  model.declare_flow("synth.detect", "synth.reached");
  // No flow delivers anything here: the whole boundary is redundant.
  InterfaceDecl island;
  island.component = "fs";
  island.routine = "synth.island";
  island.allowed = {ErrorKind::kEndOfFile};
  model.declare_interface(std::move(island));

  const FlowReport report = FlowAnalyzer().analyze(model);
  ASSERT_EQ(report.count("esf/redundant-consumption"), 2u) << report.str();
  bool dead_entry = false;
  bool unreached_boundary = false;
  for (const FlowFinding& f : report.findings) {
    if (f.rule != "esf/redundant-consumption") continue;
    if (f.node == "synth.reached") {
      EXPECT_EQ(f.kind, ErrorKind::kEndOfFile);
      EXPECT_NE(f.message.find("contract entry"), std::string::npos);
      dead_entry = true;
    }
    if (f.node == "synth.island") {
      EXPECT_EQ(f.kind, ErrorKind::kUnknown);
      EXPECT_NE(f.message.find("no declared flow"), std::string::npos);
      unreached_boundary = true;
    }
  }
  EXPECT_TRUE(dead_entry) << report.str();
  EXPECT_TRUE(unreached_boundary) << report.str();
}

// ---- esf/masking-cycle ----

TEST(FlowAnalyzer, FlowRingIsReportedExactlyOnce) {
  TopologyModel model;
  model.declare_detection({"a", "synth.detect", {ErrorKind::kIoError}});
  InterfaceDecl ping;
  ping.component = "a";
  ping.routine = "synth.ping";
  ping.allowed = {ErrorKind::kIoError};
  model.declare_interface(std::move(ping));
  InterfaceDecl pong;
  pong.component = "b";
  pong.routine = "synth.pong";
  pong.allowed = {ErrorKind::kIoError};
  model.declare_interface(std::move(pong));
  model.declare_flow("synth.detect", "synth.ping");
  model.declare_flow("synth.ping", "synth.pong");
  model.declare_flow("synth.pong", "synth.ping");

  const FlowReport report = FlowAnalyzer().analyze(model);
  ASSERT_EQ(report.count("esf/masking-cycle"), 1u) << report.str();
  const FlowFinding* cycle = first_with_rule(report, "esf/masking-cycle");
  ASSERT_NE(cycle, nullptr);
  EXPECT_NE(cycle->message.find("synth.ping"), std::string::npos);
  EXPECT_NE(cycle->message.find("synth.pong"), std::string::npos);
  EXPECT_TRUE(witness_mentions(*cycle, "flows through synth.ping"));
}

// ---- esf/dangling-edge ----

TEST(FlowAnalyzer, UnresolvableEdgeIsFlaggedWithTheMissingName) {
  TopologyModel model;
  // esg-lint: allow(lint/dangling-flow)
  model.declare_flow("synth.ghost", "synth.nowhere");

  const FlowReport report = FlowAnalyzer().analyze(model);
  ASSERT_EQ(report.count("esf/dangling-edge"), 1u) << report.str();
  const FlowFinding& f = report.findings[0];
  EXPECT_NE(f.message.find("synth.ghost"), std::string::npos) << f.str();
  EXPECT_EQ(f.node, "synth.ghost -> synth.nowhere");
}

}  // namespace
}  // namespace esg::analysis

// ---- witness compiler + confirm loop ----

namespace esg::chaos {
namespace {

analysis::FlowFinding laundering_finding(ErrorKind kind) {
  analysis::FlowFinding f;
  f.rule = "esf/multi-hop-laundering";
  f.component = "user";
  f.node = "user.results";
  f.kind = kind;
  return f;
}

TEST(WitnessCompiler, LocalResourceKindCompilesToFsFaultWindow) {
  const auto witness = compile_witness(
      laundering_finding(ErrorKind::kMountOffline));
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->plan.shape.discipline, "naive");
  EXPECT_EQ(witness->plan.seed,
            1000 + static_cast<std::uint64_t>(ErrorKind::kMountOffline));
  ASSERT_EQ(witness->plan.actions.size(), 1u);
  EXPECT_EQ(witness->plan.actions[0].type, FaultActionType::kFsFaults);
  EXPECT_NE(witness->rationale.find("local-resource"), std::string::npos)
      << witness->rationale;
}

TEST(WitnessCompiler, NetworkKindCompilesToPartitionThenHeal) {
  const auto witness = compile_witness(
      laundering_finding(ErrorKind::kConnectionLost));
  ASSERT_TRUE(witness.has_value());
  ASSERT_EQ(witness->plan.actions.size(), 2u);
  EXPECT_EQ(witness->plan.actions[0].type, FaultActionType::kPartition);
  EXPECT_EQ(witness->plan.actions[1].type, FaultActionType::kHeal);
  EXPECT_LT(witness->plan.actions[0].at, witness->plan.actions[1].at);
}

TEST(WitnessCompiler, EnvironmentalFamilyCompilesToChronicMachine) {
  const auto witness = compile_witness(
      laundering_finding(ErrorKind::kOutOfMemory));
  ASSERT_TRUE(witness.has_value());
  ASSERT_EQ(witness->plan.actions.size(), 1u);
  EXPECT_EQ(witness->plan.actions[0].type, FaultActionType::kChronic);
}

TEST(WitnessCompiler, ProgramScopeKindsDoNotCompile) {
  // The job's own doing: nothing environmental to inject would make an
  // exit code the pool's fault.
  EXPECT_FALSE(
      compile_witness(laundering_finding(ErrorKind::kExitNonZero))
          .has_value());
  EXPECT_FALSE(
      compile_witness(laundering_finding(ErrorKind::kNullPointer))
          .has_value());
}

TEST(WitnessCompiler, KindlessStructuralFindingsDoNotCompile) {
  analysis::FlowFinding f;
  f.rule = "esf/redundant-consumption";
  f.node = "JavaIo.IOException";
  EXPECT_FALSE(compile_witness(f).has_value());
}

TEST(WitnessCompiler, PlanRoundTripsThroughTheFaultPlanFormat) {
  const auto witness = compile_witness(
      laundering_finding(ErrorKind::kMountOffline));
  ASSERT_TRUE(witness.has_value());
  const auto parsed = parse_plan(witness->plan.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seed, witness->plan.seed);
  ASSERT_EQ(parsed->actions.size(), witness->plan.actions.size());
  EXPECT_EQ(parsed->actions[0].type, witness->plan.actions[0].type);
}

TEST(WitnessConfirm, CompiledLaunderingWitnessConfirmsAgainstTheOracles) {
  // The full static -> dynamic loop on one finding: the fs-fault window
  // bites the naive pool (misattribution: the user inherits an
  // environmental error) while the scoped pool replays the identical plan
  // and finishes green.
  const auto witness = compile_witness(
      laundering_finding(ErrorKind::kMountOffline));
  ASSERT_TRUE(witness.has_value());
  const WitnessVerdict verdict = confirm_witness(witness->plan);
  EXPECT_TRUE(verdict.naive_bitten()) << verdict.str();
  EXPECT_TRUE(verdict.scoped_clean()) << verdict.str();
  EXPECT_TRUE(verdict.confirmed());
  EXPECT_NE(verdict.str().find("CONFIRMED"), std::string::npos);
}

}  // namespace
}  // namespace esg::chaos
