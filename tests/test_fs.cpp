// Unit tests for the simulated filesystem.
#include <gtest/gtest.h>

#include "fs/simfs.hpp"

namespace esg::fs {
namespace {

TEST(Paths, Normalization) {
  EXPECT_EQ(normalize_path("/a//b/./c").value(), "/a/b/c");
  EXPECT_EQ(normalize_path("/").value(), "/");
  EXPECT_FALSE(normalize_path("relative").ok());
  EXPECT_FALSE(normalize_path("/a/../b").ok());
}

TEST(SimFs, WriteThenReadBack) {
  SimFileSystem fs("host");
  ASSERT_TRUE(fs.write_file("/hello.txt", "world").ok());
  Result<std::string> r = fs.read_file("/hello.txt");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), "world");
}

TEST(SimFs, OpenMissingFileIsFileNotFound) {
  SimFileSystem fs("host");
  Result<FileHandle> h = fs.open("/missing", OpenMode::kRead);
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.error().kind(), ErrorKind::kFileNotFound);
  EXPECT_EQ(h.error().scope(), ErrorScope::kFile);
}

TEST(SimFs, MkdirRequiresParent) {
  SimFileSystem fs("host");
  EXPECT_FALSE(fs.mkdir("/a/b").ok());
  ASSERT_TRUE(fs.mkdirs("/a/b/c").ok());
  EXPECT_TRUE(fs.exists("/a/b/c"));
  Result<Stat> s = fs.stat("/a/b");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s.value().is_dir);
}

TEST(SimFs, MkdirOnExistingFileFails) {
  SimFileSystem fs("host");
  ASSERT_TRUE(fs.write_file("/f", "x").ok());
  EXPECT_EQ(fs.mkdir("/f").error().kind(), ErrorKind::kFileExists);
  EXPECT_EQ(fs.mkdirs("/f/sub").error().kind(), ErrorKind::kNotDirectory);
}

TEST(SimFs, UnlinkAndRmdirSemantics) {
  SimFileSystem fs("host");
  ASSERT_TRUE(fs.mkdirs("/d").ok());
  ASSERT_TRUE(fs.write_file("/d/f", "x").ok());
  EXPECT_EQ(fs.rmdir("/d").error().kind(), ErrorKind::kAccessDenied);
  EXPECT_EQ(fs.unlink("/d").error().kind(), ErrorKind::kIsDirectory);
  ASSERT_TRUE(fs.unlink("/d/f").ok());
  ASSERT_TRUE(fs.rmdir("/d").ok());
  EXPECT_FALSE(fs.exists("/d"));
}

TEST(SimFs, RemoveAllIsRecursive) {
  SimFileSystem fs("host");
  ASSERT_TRUE(fs.mkdirs("/tree/a/b").ok());
  ASSERT_TRUE(fs.write_file("/tree/a/b/f", "x").ok());
  ASSERT_TRUE(fs.remove_all("/tree").ok());
  EXPECT_FALSE(fs.exists("/tree"));
}

TEST(SimFs, ListSortedNames) {
  SimFileSystem fs("host");
  ASSERT_TRUE(fs.mkdirs("/d").ok());
  ASSERT_TRUE(fs.write_file("/d/b", "").ok());
  ASSERT_TRUE(fs.write_file("/d/a", "").ok());
  Result<std::vector<std::string>> names = fs.list("/d");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names.value(), (std::vector<std::string>{"a", "b"}));
}

TEST(SimFs, ReadWriteOffsets) {
  SimFileSystem fs("host");
  Result<FileHandle> h = fs.open("/f", OpenMode::kWrite);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h.value().write("abcdef").ok());
  ASSERT_TRUE(h.value().seek(2).ok());
  ASSERT_TRUE(h.value().write("XY").ok());
  EXPECT_EQ(fs.read_file("/f").value(), "abXYef");

  Result<FileHandle> r = fs.open("/f", OpenMode::kRead);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().read(3).value(), "abX");
  EXPECT_EQ(r.value().read(100).value(), "Yef");
  EXPECT_EQ(r.value().read(10).value(), "");  // EOF -> empty
  EXPECT_EQ(r.value().read_exact(1).error().kind(), ErrorKind::kEndOfFile);
}

TEST(SimFs, AppendMode) {
  SimFileSystem fs("host");
  ASSERT_TRUE(fs.write_file("/log", "one\n").ok());
  Result<FileHandle> h = fs.open("/log", OpenMode::kAppend);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h.value().write("two\n").ok());
  EXPECT_EQ(fs.read_file("/log").value(), "one\ntwo\n");
}

TEST(SimFs, TruncateOnWriteOpen) {
  SimFileSystem fs("host");
  ASSERT_TRUE(fs.write_file("/f", "long content").ok());
  ASSERT_TRUE(fs.write_file("/f", "x").ok());
  EXPECT_EQ(fs.read_file("/f").value(), "x");
}

TEST(SimFs, WriteOnReadOnlyHandleFails) {
  SimFileSystem fs("host");
  ASSERT_TRUE(fs.write_file("/f", "x").ok());
  Result<FileHandle> h = fs.open("/f", OpenMode::kRead);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value().write("y").error().kind(), ErrorKind::kAccessDenied);
}

TEST(SimFs, ClosedHandleIsBadFd) {
  SimFileSystem fs("host");
  Result<FileHandle> h = fs.open("/f", OpenMode::kWrite);
  ASSERT_TRUE(h.ok());
  h.value().close();
  EXPECT_EQ(h.value().read(1).error().kind(), ErrorKind::kBadFileDescriptor);
  EXPECT_EQ(h.value().write("x").error().kind(),
            ErrorKind::kBadFileDescriptor);
}

// ---- mounts ----

TEST(Mounts, CapacityEnforcedAsDiskFull) {
  SimFileSystem fs("host");
  fs.add_mount("/small", 10);
  Result<FileHandle> h = fs.open("/small/f", OpenMode::kWrite);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(h.value().write("12345").ok());
  Result<void> r = h.value().write("6789012345");  // would exceed 10
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind(), ErrorKind::kDiskFull);
  // Freeing space makes room again.
  ASSERT_TRUE(fs.unlink("/small/f").ok());
  EXPECT_EQ(fs.mount_used("/small/x"), 0u);
  EXPECT_TRUE(fs.write_file("/small/g", "0123456789").ok());
}

TEST(Mounts, TruncateReleasesBytes) {
  SimFileSystem fs("host");
  fs.add_mount("/m", 10);
  ASSERT_TRUE(fs.write_file("/m/f", "0123456789").ok());
  // Re-opening with truncate must release the quota.
  ASSERT_TRUE(fs.write_file("/m/f", "abc").ok());
  EXPECT_EQ(fs.mount_used("/m/f"), 3u);
}

TEST(Mounts, OfflineMountFailsAllOps) {
  SimFileSystem fs("host");
  fs.add_mount("/home", 0);
  ASSERT_TRUE(fs.write_file("/home/f", "x").ok());
  fs.set_mount_online("/home", false);
  EXPECT_EQ(fs.read_file("/home/f").error().kind(), ErrorKind::kMountOffline);
  EXPECT_EQ(fs.write_file("/home/g", "y").error().kind(),
            ErrorKind::kMountOffline);
  EXPECT_EQ(fs.stat("/home/f").error().kind(), ErrorKind::kMountOffline);
  // The root mount is unaffected.
  EXPECT_TRUE(fs.write_file("/elsewhere", "z").ok());
  // Back online: the data survived the outage.
  fs.set_mount_online("/home", true);
  EXPECT_EQ(fs.read_file("/home/f").value(), "x");
}

TEST(Mounts, OpenHandleSurvivesOutage) {
  // §5 NFS semantics: operations fail during the outage and succeed after.
  SimFileSystem fs("host");
  fs.add_mount("/home", 0);
  ASSERT_TRUE(fs.write_file("/home/f", "data").ok());
  Result<FileHandle> h = fs.open("/home/f", OpenMode::kRead);
  ASSERT_TRUE(h.ok());
  fs.set_mount_online("/home", false);
  EXPECT_EQ(h.value().read(4).error().kind(), ErrorKind::kMountOffline);
  fs.set_mount_online("/home", true);
  EXPECT_EQ(h.value().read(4).value(), "data");
}

TEST(Mounts, OfflineErrorCarriesLocalResourceScope) {
  SimFileSystem fs("host");
  fs.add_mount("/home", 0);
  fs.set_mount_online("/home", false);
  Result<std::string> r = fs.read_file("/home/f");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().scope(), ErrorScope::kLocalResource);
  ASSERT_NE(r.error().label("injected"), nullptr);
}

// ---- access control ----

TEST(Acl, DenyWrite) {
  SimFileSystem fs("host");
  ASSERT_TRUE(fs.mkdirs("/ro").ok());
  fs.set_access("/ro", true, false);
  EXPECT_EQ(fs.write_file("/ro/f", "x").error().kind(),
            ErrorKind::kAccessDenied);
}

TEST(Acl, DenyRead) {
  SimFileSystem fs("host");
  ASSERT_TRUE(fs.write_file("/secret", "x").ok());
  fs.set_access("/secret", false, true);
  EXPECT_EQ(fs.read_file("/secret").error().kind(), ErrorKind::kAccessDenied);
}

// ---- fault injection ----

TEST(Faults, TransientRateZeroNeverFires) {
  SimFileSystem fs("host");
  fs.set_transient_fault_rate(0.0, Rng(1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(fs.write_file("/f", "x").ok());
  }
}

TEST(Faults, TransientRateOneAlwaysFires) {
  SimFileSystem fs("host");
  fs.set_transient_fault_rate(1.0, Rng(1));
  Result<void> r = fs.write_file("/f", "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind(), ErrorKind::kIoError);
}

}  // namespace
}  // namespace esg::fs

namespace esg::fs {
namespace {

// ---- rename ----

TEST(Rename, MovesFilesWithinAMount) {
  SimFileSystem fs("host");
  ASSERT_TRUE(fs.mkdirs("/a/b").ok());
  ASSERT_TRUE(fs.write_file("/a/b/f", "data").ok());
  ASSERT_TRUE(fs.rename("/a/b/f", "/a/g").ok());
  EXPECT_FALSE(fs.exists("/a/b/f"));
  EXPECT_EQ(fs.read_file("/a/g").value(), "data");
}

TEST(Rename, MovesWholeDirectories) {
  SimFileSystem fs("host");
  ASSERT_TRUE(fs.mkdirs("/src/deep").ok());
  ASSERT_TRUE(fs.write_file("/src/deep/f", "x").ok());
  ASSERT_TRUE(fs.rename("/src", "/dst").ok());
  EXPECT_EQ(fs.read_file("/dst/deep/f").value(), "x");
  EXPECT_FALSE(fs.exists("/src"));
}

TEST(Rename, RefusesExistingDestination) {
  SimFileSystem fs("host");
  ASSERT_TRUE(fs.write_file("/a", "1").ok());
  ASSERT_TRUE(fs.write_file("/b", "2").ok());
  EXPECT_EQ(fs.rename("/a", "/b").error().kind(), ErrorKind::kFileExists);
}

TEST(Rename, RefusesMissingSourceAndParent) {
  SimFileSystem fs("host");
  EXPECT_EQ(fs.rename("/nope", "/x").error().kind(),
            ErrorKind::kFileNotFound);
  ASSERT_TRUE(fs.write_file("/f", "x").ok());
  EXPECT_EQ(fs.rename("/f", "/no/such/dir/f").error().kind(),
            ErrorKind::kFileNotFound);
}

TEST(Rename, RefusesCrossMountMoves) {
  SimFileSystem fs("host");
  fs.add_mount("/mnt", 0);
  ASSERT_TRUE(fs.write_file("/f", "x").ok());
  Result<void> r = fs.rename("/f", "/mnt/f");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind(), ErrorKind::kAccessDenied);
}

TEST(Rename, OfflineMountRefusesRename) {
  SimFileSystem fs("host");
  fs.add_mount("/m", 0);
  ASSERT_TRUE(fs.write_file("/m/f", "x").ok());
  fs.set_mount_online("/m", false);
  EXPECT_EQ(fs.rename("/m/f", "/m/g").error().kind(),
            ErrorKind::kMountOffline);
}

}  // namespace
}  // namespace esg::fs
