// Defensive-parsing fuzz: every parser that reads data from across a trust
// boundary (wire messages, chirp frames, result files, program images,
// classad text) must reject garbage with an explicit error — never crash,
// never hang, never accept nonsense as valid.
//
// Deterministic: a seeded generator produces both random bytes and
// "almost valid" mutations of real encodings.
#include <gtest/gtest.h>

#include "chirp/protocol.hpp"
#include "classad/classad.hpp"
#include "common/rng.hpp"
#include "daemons/job.hpp"
#include "daemons/wire.hpp"
#include "jvm/program.hpp"
#include "jvm/resultfile.hpp"

namespace esg {
namespace {

std::string random_bytes(Rng& rng, std::size_t max_len) {
  const std::size_t len =
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
  std::string out(len, '\0');
  for (char& c : out) {
    c = static_cast<char>(rng.uniform_int(1, 255));  // no embedded NUL
  }
  return out;
}

/// Mutate a valid encoding: flip, delete, or duplicate a few characters.
std::string mutate(Rng& rng, std::string s) {
  if (s.empty()) return s;
  const int edits = static_cast<int>(rng.uniform_int(1, 4));
  for (int i = 0; i < edits && !s.empty(); ++i) {
    const std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(s.size()) - 1));
    switch (rng.uniform_int(0, 2)) {
      case 0:
        s[pos] = static_cast<char>(rng.uniform_int(32, 126));
        break;
      case 1:
        s.erase(pos, 1);
        break;
      default:
        s.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
    }
  }
  return s;
}

TEST(Fuzz, ClassAdParserNeverCrashes) {
  Rng rng(1001);
  for (int i = 0; i < 2000; ++i) {
    const std::string input = random_bytes(rng, 200);
    (void)classad::parse_expr(input);
    (void)classad::parse_classad(input);
  }
}

TEST(Fuzz, ClassAdMutationsParseOrFailCleanly) {
  Rng rng(1002);
  const std::string valid =
      "[a = 1; b = \"text\"; c = a + 2 * 3; d = {1, 2.5, \"x\"};"
      " e = isUndefined(f) ? 0 : f]";
  for (int i = 0; i < 2000; ++i) {
    Result<classad::ClassAd> r = classad::parse_classad(mutate(rng, valid));
    if (r.ok()) {
      // If it parsed, it must also re-render and re-parse.
      Result<classad::ClassAd> again = classad::parse_classad(r.value().str());
      EXPECT_TRUE(again.ok()) << r.value().str();
    }
  }
}

TEST(Fuzz, ChirpCodecsNeverCrash) {
  Rng rng(1003);
  for (int i = 0; i < 2000; ++i) {
    const std::string input = random_bytes(rng, 100);
    (void)chirp::parse_request(input);
    (void)chirp::parse_response(input);
  }
}

TEST(Fuzz, ChirpResponseMutationsRoundTripWhenAccepted) {
  Rng rng(1004);
  const std::string valid =
      chirp::Response::fail_scoped(chirp::Code::kOffline,
                                   ErrorScope::kLocalResource)
          .encode();
  for (int i = 0; i < 2000; ++i) {
    Result<chirp::Response> r = chirp::parse_response(mutate(rng, valid));
    if (r.ok()) {
      (void)chirp::parse_response(r.value().encode());
    }
  }
}

TEST(Fuzz, WireMessagesNeverCrash) {
  Rng rng(1005);
  for (int i = 0; i < 1000; ++i) {
    (void)daemons::WireMessage::parse(random_bytes(rng, 300));
  }
}

TEST(Fuzz, ResultFileNeverCrashesAndNeverInventsScopes) {
  Rng rng(1006);
  jvm::ResultFile valid;
  valid.exit_by = jvm::ResultFile::ExitBy::kException;
  valid.exit_code = 1;
  valid.error = Error(ErrorKind::kOutOfMemory, "x");
  const std::string encoded = valid.encode();
  for (int i = 0; i < 2000; ++i) {
    Result<jvm::ResultFile> r = jvm::ResultFile::parse(mutate(rng, encoded));
    if (r.ok() && r.value().error.has_value()) {
      // Whatever was accepted, the scope is a member of the closed set.
      const ErrorScope s = r.value().error->scope();
      EXPECT_TRUE(parse_scope(scope_name(s)).has_value());
    }
  }
  for (int i = 0; i < 1000; ++i) {
    (void)jvm::ResultFile::parse(random_bytes(rng, 200));
  }
}

TEST(Fuzz, ProgramImagesNeverCrash) {
  Rng rng(1007);
  const std::string valid = jvm::serialize_program(
      jvm::ProgramBuilder("F")
          .compute(SimTime::sec(1))
          .open_read("/a", 0)
          .read(0, 10)
          .throw_exception(ErrorKind::kNullPointer)
          .build());
  for (int i = 0; i < 2000; ++i) {
    Result<jvm::JobProgram> r = jvm::deserialize_program(mutate(rng, valid));
    if (r.ok()) {
      // An accepted image must round-trip exactly.
      const std::string again = jvm::serialize_program(r.value());
      Result<jvm::JobProgram> r2 = jvm::deserialize_program(again);
      ASSERT_TRUE(r2.ok());
      EXPECT_EQ(jvm::serialize_program(r2.value()), again);
    }
  }
  for (int i = 0; i < 1000; ++i) {
    (void)jvm::deserialize_program(random_bytes(rng, 300));
  }
}

TEST(Fuzz, JobAdsFromHostileAdsNeverCrash) {
  Rng rng(1008);
  daemons::JobDescription job;
  job.id = JobId{9};
  job.program = jvm::ProgramBuilder("X").compute(SimTime::sec(1)).build();
  const std::string valid = job.to_full_ad().value().str();
  for (int i = 0; i < 1500; ++i) {
    Result<classad::ClassAd> ad = classad::parse_classad(mutate(rng, valid));
    if (!ad.ok()) continue;
    (void)daemons::JobDescription::from_ad(ad.value());
  }
}

}  // namespace
}  // namespace esg
