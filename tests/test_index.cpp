// FlatMap container contract + the matchmaking ad index.
//
// The index is a prefilter, never a judge: its one inviolable property is
// that candidates() returns a superset of the machines whose full
// Requirements evaluation could succeed. The property test at the bottom
// checks exactly that against brute-force evaluation over randomized ads.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "classad/classad.hpp"
#include "classad/index.hpp"
#include "classad/match.hpp"
#include "common/flatmap.hpp"
#include "common/rng.hpp"

namespace esg {
namespace {

TEST(FlatMap, BehavesLikeStdMapUnderMixedMutation) {
  FlatMap<std::string, int> flat;
  std::map<std::string, int> reference;
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "k" + std::to_string(rng.uniform_int(0, 60));
    switch (rng.uniform_int(0, 3)) {
      case 0:
        flat[key] = i;
        reference[key] = i;
        break;
      case 1:
        flat.emplace(key, i);
        reference.emplace(key, i);
        break;
      case 2:
        flat.erase(key);
        reference.erase(key);
        break;
      default: {
        auto fit = flat.find(key);
        auto rit = reference.find(key);
        ASSERT_EQ(fit == flat.end(), rit == reference.end()) << key;
        if (fit != flat.end()) ASSERT_EQ(fit->second, rit->second);
        break;
      }
    }
  }
  ASSERT_EQ(flat.size(), reference.size());
  auto rit = reference.begin();
  for (const auto& [key, value] : flat) {
    ASSERT_EQ(key, rit->first);
    ASSERT_EQ(value, rit->second);
    ++rit;
  }
}

TEST(FlatMap, EraseByIteratorReturnsSuccessor) {
  FlatMap<int, std::string> m;
  m[1] = "a";
  m[2] = "b";
  m[3] = "c";
  auto it = m.erase(m.find(2));
  ASSERT_NE(it, m.end());
  EXPECT_EQ(it->first, 3);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_FALSE(m.contains(2));
  EXPECT_EQ(m.at(1), "a");
}

TEST(FlatMap, LowerBoundAndContains) {
  FlatMap<int, int> m;
  for (int i = 0; i < 10; i += 2) m[i] = i;
  EXPECT_EQ(m.lower_bound(3)->first, 4);
  EXPECT_EQ(m.lower_bound(4)->first, 4);
  EXPECT_EQ(m.lower_bound(9), m.end());
  EXPECT_TRUE(m.contains(6));
  EXPECT_EQ(m.count(7), 0u);
}

classad::ClassAd parse(const std::string& text) {
  auto result = classad::parse_classad(text);
  EXPECT_TRUE(result.ok()) << text;
  return std::move(result).value();
}

classad::RequirementsProfile profile_of(const std::string& requirements,
                                        const std::string& extra = {}) {
  classad::ClassAd job;
  if (!extra.empty()) job = parse(extra);
  EXPECT_TRUE(job.insert_expr("Requirements", requirements).ok());
  return classad::profile_requirements(job, SimTime::sec(1));
}

TEST(RequirementsProfile, ExtractsConjunctsOfTargetConstants) {
  const auto profile = profile_of(
      "TARGET.Arch == \"INTEL\" && TARGET.Memory >= 512 && "
      "TARGET.HasJava =?= true");
  ASSERT_EQ(profile.predicates.size(), 3u);
  EXPECT_EQ(profile.predicates[0].str(), "arch == \"INTEL\"");
  EXPECT_EQ(profile.predicates[1].str(), "memory >= 512");
  EXPECT_EQ(profile.predicates[2].str(), "hasjava =?= true");
}

TEST(RequirementsProfile, AutoScopeFallsThroughToTargetOnlyWhenAbsent) {
  // `Memory` is unqualified: if the job ad defines it, auto-scope resolves
  // MY-first and the conjunct says nothing about the machine.
  const auto absent = profile_of("Memory >= 512");
  ASSERT_EQ(absent.predicates.size(), 1u);
  EXPECT_EQ(absent.predicates[0].str(), "memory >= 512");

  const auto present = profile_of("Memory >= 512", "[Memory = 1024]");
  EXPECT_FALSE(present.indexable());
}

TEST(RequirementsProfile, ConstantSideMayReferenceTheJobAd) {
  const auto profile =
      profile_of("TARGET.Memory >= MY.ImageSizeMB * 2", "[ImageSizeMB = 100]");
  ASSERT_EQ(profile.predicates.size(), 1u);
  EXPECT_EQ(profile.predicates[0].str(), "memory >= 200");
}

TEST(RequirementsProfile, MirrorsConstantOnTheLeft) {
  const auto profile = profile_of("512 <= TARGET.Memory");
  ASSERT_EQ(profile.predicates.size(), 1u);
  EXPECT_EQ(profile.predicates[0].str(), "memory >= 512");
}

TEST(RequirementsProfile, RefusesDisjunctionsNegationsAndInequality) {
  EXPECT_FALSE(
      profile_of("TARGET.Arch == \"INTEL\" || TARGET.Memory >= 512")
          .indexable());
  EXPECT_FALSE(profile_of("TARGET.Arch != \"SUN4u\"").indexable());
  EXPECT_FALSE(profile_of("TARGET.Missing =!= true").indexable());
  EXPECT_FALSE(profile_of("!(TARGET.Arch == \"INTEL\")").indexable());
  // But a conjunction keeps whatever is extractable.
  const auto mixed = profile_of(
      "(TARGET.Arch == \"INTEL\" || TARGET.OpSys == \"LINUX\") && "
      "TARGET.Memory >= 256");
  ASSERT_EQ(mixed.predicates.size(), 1u);
  EXPECT_EQ(mixed.predicates[0].str(), "memory >= 256");
}

TEST(RequirementsProfile, TargetOnBothSidesIsNotAConstant) {
  EXPECT_FALSE(profile_of("TARGET.Memory >= TARGET.ImageSizeMB").indexable());
}

TEST(AdIndex, EqualityBucketsAreCaseInsensitiveLikeClassAdEquality) {
  classad::AdIndex index;
  index.insert(0, parse("[Arch = \"INTEL\"]"));
  index.insert(1, parse("[Arch = \"intel\"]"));
  index.insert(2, parse("[Arch = \"SUN4u\"]"));

  std::vector<std::uint32_t> out;
  ASSERT_TRUE(index.candidates(profile_of("TARGET.Arch == \"Intel\""), out));
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1}));
}

TEST(AdIndex, ThresholdSelectsBucketsAndNumbersPromote) {
  classad::AdIndex index;
  index.insert(0, parse("[Memory = 128]"));
  index.insert(1, parse("[Memory = 512]"));
  index.insert(2, parse("[Memory = 512.0]"));
  index.insert(3, parse("[Memory = 1024]"));

  std::vector<std::uint32_t> out;
  ASSERT_TRUE(index.candidates(profile_of("TARGET.Memory >= 512"), out));
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1, 2, 3}));
  ASSERT_TRUE(index.candidates(profile_of("TARGET.Memory < 512"), out));
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
}

TEST(AdIndex, NonLiteralAttributesAreAlwaysCandidates) {
  classad::AdIndex index;
  index.insert(0, parse("[Memory = 128]"));
  classad::ClassAd computed;
  ASSERT_TRUE(computed.insert_expr("Memory", "Base + 64").ok());
  index.insert(1, computed);

  std::vector<std::uint32_t> out;
  ASSERT_TRUE(index.candidates(profile_of("TARGET.Memory >= 512"), out));
  // Slot 0's literal 128 fails the threshold; slot 1 cannot be judged from
  // the index and must survive to full evaluation.
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1}));
}

TEST(AdIndex, MissingAttributeExcludesEverything) {
  classad::AdIndex index;
  index.insert(0, parse("[Arch = \"INTEL\"]"));
  std::vector<std::uint32_t> out;
  ASSERT_TRUE(index.candidates(profile_of("TARGET.NoSuchAttr == 7"), out));
  EXPECT_TRUE(out.empty());
}

TEST(AdIndex, UnusableProfileForcesExhaustiveScan) {
  classad::AdIndex index;
  index.insert(0, parse("[Arch = \"INTEL\"]"));
  std::vector<std::uint32_t> out;
  EXPECT_FALSE(index.candidates(classad::RequirementsProfile{}, out));
}

TEST(AdIndex, EraseDropsPostingsAndReusesSlots) {
  classad::AdIndex index;
  index.insert(0, parse("[Arch = \"INTEL\"; Memory = 512]"));
  index.insert(1, parse("[Arch = \"INTEL\"; Memory = 128]"));
  EXPECT_EQ(index.size(), 2u);
  index.erase(0);
  EXPECT_EQ(index.size(), 1u);

  std::vector<std::uint32_t> out;
  ASSERT_TRUE(index.candidates(profile_of("TARGET.Arch == \"INTEL\""), out));
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1}));

  index.insert(0, parse("[Arch = \"SUN4u\"]"));
  ASSERT_TRUE(index.candidates(profile_of("TARGET.Arch == \"SUN4u\""), out));
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
  index.erase(7);  // never inserted: harmless
  EXPECT_EQ(index.size(), 2u);
}

// The soundness property: for randomized machine ads and a grid of job
// Requirements, every machine whose full evaluation yields true must
// appear among the index candidates (when the index claims usability).
TEST(AdIndex, CandidatesAreASupersetOfTrueMatches) {
  Rng rng(2002);
  const std::vector<std::string> arches = {"INTEL", "SUN4u", "PPC"};
  const std::vector<std::string> systems = {"LINUX", "SOLARIS28"};
  const std::vector<std::int64_t> memories = {128, 256, 512, 1024};

  std::vector<classad::ClassAd> machines;
  classad::AdIndex index;
  for (std::uint32_t slot = 0; slot < 120; ++slot) {
    classad::ClassAd ad;
    if (rng.chance(0.9)) {
      ad.set("Arch", arches[static_cast<std::size_t>(
                         rng.uniform_int(0, static_cast<int>(arches.size()) - 1))]);
    }
    ad.set("OpSys", systems[static_cast<std::size_t>(
                        rng.uniform_int(0, static_cast<int>(systems.size()) - 1))]);
    if (rng.chance(0.8)) {
      ad.set("Memory", memories[static_cast<std::size_t>(rng.uniform_int(
                           0, static_cast<int>(memories.size()) - 1))]);
    } else if (rng.chance(0.5)) {
      // Un-indexable: the index must keep this machine as a candidate.
      ASSERT_TRUE(ad.insert_expr("Memory", "BaseMemory + 64").ok());
      ad.set("BaseMemory", std::int64_t{448});
    }
    if (rng.chance(0.7)) ad.set("HasJava", rng.chance(0.5));
    index.insert(slot, ad);
    machines.push_back(std::move(ad));
  }

  const std::vector<std::string> requirement_grid = {
      "TARGET.Arch == \"INTEL\"",
      "TARGET.Arch == \"INTEL\" && TARGET.Memory >= 512",
      "TARGET.Memory >= 256 && TARGET.Memory < 1024",
      "TARGET.HasJava =?= true && TARGET.OpSys == \"LINUX\"",
      "TARGET.Memory >= MY.ImageSizeMB",
      "TARGET.Arch == \"PPC\" || TARGET.Memory >= 128",  // un-indexable
      "TARGET.OpSys == \"SOLARIS28\" && "
      "(TARGET.Arch == \"SUN4u\" || TARGET.HasJava == true)",
  };

  const SimTime now = SimTime::sec(10);
  for (const std::string& requirements : requirement_grid) {
    classad::ClassAd job = parse("[ImageSizeMB = 300]");
    ASSERT_TRUE(job.insert_expr("Requirements", requirements).ok());
    const auto profile = classad::profile_requirements(job, now);
    std::vector<std::uint32_t> out;
    if (!index.candidates(profile, out)) continue;  // exhaustive fallback
    for (std::uint32_t slot = 0; slot < machines.size(); ++slot) {
      const classad::Value v =
          classad::eval_with_target(job, machines[slot], "Requirements", now);
      const bool matches = v.is_bool() && v.as_bool();
      if (matches) {
        EXPECT_TRUE(std::find(out.begin(), out.end(), slot) != out.end())
            << requirements << " slot " << slot;
      }
    }
  }
}

}  // namespace
}  // namespace esg
