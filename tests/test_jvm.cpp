// Unit tests for the simulated JVM, the wrapper, and the Java I/O library.
#include <gtest/gtest.h>

#include "jvm/jvm.hpp"

namespace esg::jvm {
namespace {

struct JvmFixture {
  sim::Engine engine{17};
  fs::SimFileSystem fs{"exec0"};
  JvmConfig config;
  std::unique_ptr<LocalJavaIo> io;

  JvmFixture() {
    EXPECT_TRUE(fs.mkdirs("/scratch").ok());
    io = std::make_unique<LocalJavaIo>(fs, IoDiscipline::kConcise);
  }

  JvmOutcome run(const JobProgram& program, WrapMode mode) {
    SimJvm jvm(engine, config);
    JvmOutcome out;
    bool done = false;
    jvm.run(program, *io, mode, &fs, "/scratch/.result",
            [&](const JvmOutcome& o) {
              out = o;
              done = true;
            });
    engine.run();
    EXPECT_TRUE(done);
    return out;
  }

  ResultFile result_file() {
    Result<std::string> text = fs.read_file("/scratch/.result");
    EXPECT_TRUE(text.ok());
    Result<ResultFile> rf = ResultFile::parse(text.value());
    EXPECT_TRUE(rf.ok());
    return rf.ok() ? rf.value() : ResultFile{};
  }
};

// ---- Figure 4: JVM result codes ----

TEST(Figure4, CompletionIsZero) {
  JvmFixture f;
  const JvmOutcome out =
      f.run(ProgramBuilder("P").compute(SimTime::msec(1)).build(),
            WrapMode::kBare);
  EXPECT_EQ(out.exit_code, 0);
  EXPECT_TRUE(out.completed_main);
}

TEST(Figure4, SystemExitIsX) {
  JvmFixture f;
  const JvmOutcome out =
      f.run(ProgramBuilder("P").exit(42).build(), WrapMode::kBare);
  EXPECT_EQ(out.exit_code, 42);
  ASSERT_TRUE(out.system_exit.has_value());
}

TEST(Figure4, NullPointerIsOne) {
  JvmFixture f;
  const JvmOutcome out =
      f.run(ProgramBuilder("P").throw_exception(ErrorKind::kNullPointer).build(),
            WrapMode::kBare);
  EXPECT_EQ(out.exit_code, 1);
  ASSERT_TRUE(out.condition.has_value());
  EXPECT_EQ(out.condition->scope(), ErrorScope::kProgram);
}

TEST(Figure4, OutOfMemoryIsAlsoOne) {
  JvmFixture f;
  f.config.heap_bytes = 1 << 10;
  const JvmOutcome out =
      f.run(ProgramBuilder("P").alloc(1 << 20).build(), WrapMode::kBare);
  EXPECT_EQ(out.exit_code, 1);
  ASSERT_TRUE(out.condition.has_value());
  EXPECT_EQ(out.condition->kind(), ErrorKind::kOutOfMemory);
  EXPECT_EQ(out.condition->scope(), ErrorScope::kVirtualMachine);
}

TEST(Figure4, MisconfiguredInstallIsAlsoOne) {
  JvmFixture f;
  f.config.classpath_ok = false;
  const JvmOutcome out =
      f.run(ProgramBuilder("P").compute(SimTime::msec(1)).build(),
            WrapMode::kBare);
  EXPECT_EQ(out.exit_code, 1);
  ASSERT_TRUE(out.condition.has_value());
  EXPECT_EQ(out.condition->scope(), ErrorScope::kRemoteResource);
}

TEST(Figure4, CorruptImageIsAlsoOne) {
  JvmFixture f;
  const JvmOutcome out = f.run(
      ProgramBuilder("P").compute(SimTime::msec(1)).corrupt_image().build(),
      WrapMode::kBare);
  EXPECT_EQ(out.exit_code, 1);
  ASSERT_TRUE(out.condition.has_value());
  EXPECT_EQ(out.condition->scope(), ErrorScope::kJob);
}

TEST(Figure4, ExitCodeOneIsAmbiguousAcrossScopes) {
  // The crux of Figure 4: four different scopes, one indistinguishable
  // exit code.
  JvmFixture null_ptr;
  JvmFixture oom;
  oom.config.heap_bytes = 1;
  JvmFixture misconfig;
  misconfig.config.classpath_ok = false;
  JvmFixture corrupt;

  const int c1 = null_ptr
                     .run(ProgramBuilder("P")
                              .throw_exception(ErrorKind::kNullPointer)
                              .build(),
                          WrapMode::kBare)
                     .exit_code;
  const int c2 =
      oom.run(ProgramBuilder("P").alloc(100).build(), WrapMode::kBare)
          .exit_code;
  const int c3 = misconfig
                     .run(ProgramBuilder("P").compute(SimTime::msec(1)).build(),
                          WrapMode::kBare)
                     .exit_code;
  const int c4 =
      corrupt
          .run(ProgramBuilder("P").corrupt_image().build(), WrapMode::kBare)
          .exit_code;
  EXPECT_EQ(c1, 1);
  EXPECT_EQ(c2, 1);
  EXPECT_EQ(c3, 1);
  EXPECT_EQ(c4, 1);
}

// ---- The wrapper fix (§4) ----

TEST(Wrapper, ResultFileDistinguishesWhatExitCodesCannot) {
  JvmFixture oom;
  oom.config.heap_bytes = 1;
  (void)oom.run(ProgramBuilder("P").alloc(100).build(), WrapMode::kWrapped);
  const ResultFile rf1 = oom.result_file();
  ASSERT_TRUE(rf1.error.has_value());
  EXPECT_EQ(rf1.error->scope(), ErrorScope::kVirtualMachine);

  JvmFixture corrupt;
  (void)corrupt.run(ProgramBuilder("P").corrupt_image().build(),
                    WrapMode::kWrapped);
  const ResultFile rf2 = corrupt.result_file();
  ASSERT_TRUE(rf2.error.has_value());
  EXPECT_EQ(rf2.error->scope(), ErrorScope::kJob);
}

TEST(Wrapper, CompletionRecorded) {
  JvmFixture f;
  (void)f.run(ProgramBuilder("P").compute(SimTime::msec(1)).build(),
              WrapMode::kWrapped);
  const ResultFile rf = f.result_file();
  EXPECT_EQ(rf.exit_by, ResultFile::ExitBy::kCompletion);
  EXPECT_EQ(rf.exit_code, 0);
}

TEST(Wrapper, SystemExitRecorded) {
  JvmFixture f;
  (void)f.run(ProgramBuilder("P").exit(7).build(), WrapMode::kWrapped);
  const ResultFile rf = f.result_file();
  EXPECT_EQ(rf.exit_by, ResultFile::ExitBy::kSystemExit);
  EXPECT_EQ(rf.exit_code, 7);
}

TEST(Wrapper, ProgramExceptionKeepsProgramScope) {
  JvmFixture f;
  (void)f.run(ProgramBuilder("P")
                  .throw_exception(ErrorKind::kArrayIndexOutOfBounds)
                  .build(),
              WrapMode::kWrapped);
  const ResultFile rf = f.result_file();
  EXPECT_EQ(rf.exit_by, ResultFile::ExitBy::kException);
  ASSERT_TRUE(rf.error.has_value());
  EXPECT_EQ(rf.error->scope(), ErrorScope::kProgram);
  EXPECT_EQ(rf.error->kind(), ErrorKind::kArrayIndexOutOfBounds);
}

TEST(Wrapper, MissingMainClassIsJobScope) {
  JvmFixture f;
  (void)f.run(ProgramBuilder("P").missing_main_class().build(),
              WrapMode::kWrapped);
  const ResultFile rf = f.result_file();
  ASSERT_TRUE(rf.error.has_value());
  EXPECT_EQ(rf.error->kind(), ErrorKind::kClassNotFound);
  EXPECT_EQ(rf.error->scope(), ErrorScope::kJob);
}

TEST(Wrapper, NoResultFileWhenScratchVanishes) {
  JvmFixture f;
  f.fs.add_mount("/scratch", 0);
  f.fs.set_mount_online("/scratch", false);
  const JvmOutcome out =
      f.run(ProgramBuilder("P").compute(SimTime::msec(1)).build(),
            WrapMode::kWrapped);
  EXPECT_FALSE(out.wrote_result_file);
}

// ---- heap accounting ----

TEST(Heap, FreeAllReleasesMemory) {
  JvmFixture f;
  f.config.heap_bytes = 1000;
  const JvmOutcome out = f.run(ProgramBuilder("P")
                                   .alloc(800)
                                   .free_all()
                                   .alloc(800)
                                   .build(),
                               WrapMode::kBare);
  EXPECT_TRUE(out.completed_main);
}

TEST(Heap, CumulativeAllocationsOverflow) {
  JvmFixture f;
  f.config.heap_bytes = 1000;
  const JvmOutcome out =
      f.run(ProgramBuilder("P").alloc(600).alloc(600).build(),
            WrapMode::kBare);
  EXPECT_FALSE(out.completed_main);
  ASSERT_TRUE(out.condition.has_value());
  EXPECT_EQ(out.condition->kind(), ErrorKind::kOutOfMemory);
}

// ---- I/O disciplines ----

TEST(JavaIoDiscipline, ConciseContractualErrorIsCheckedException) {
  const ErrorInterface& contract = ChirpJavaIo::open_contract();
  const JavaThrowable t = classify_io_failure(
      IoDiscipline::kConcise, contract, Error(ErrorKind::kFileNotFound));
  EXPECT_FALSE(t.is_java_error);
  EXPECT_EQ(t.error.kind(), ErrorKind::kFileNotFound);
}

TEST(JavaIoDiscipline, ConciseNonContractualBecomesJavaError) {
  // §4: "we applied Principle 2 and modified the I/O library to send an
  // escaping error (a Java Error) to the program wrapper."
  const ErrorInterface& contract = ChirpJavaIo::write_contract();
  const JavaThrowable t = classify_io_failure(
      IoDiscipline::kConcise, contract,
      Error(ErrorKind::kMountOffline, ErrorScope::kLocalResource, "home gone"));
  EXPECT_TRUE(t.is_java_error);
  EXPECT_EQ(t.error.scope(), ErrorScope::kLocalResource);
}

TEST(JavaIoDiscipline, GenericHandsEverythingToTheProgram) {
  PrincipleAudit::global().reset();  // esg-lint: allow(lint/global-singleton)
  const ErrorInterface& contract = ChirpJavaIo::write_contract();
  const JavaThrowable t = classify_io_failure(
      IoDiscipline::kGeneric, contract,
      Error(ErrorKind::kCredentialsExpired, "ticket expired"));
  EXPECT_FALSE(t.is_java_error);  // just another IOException subclass
  EXPECT_EQ(PrincipleAudit::global().violated(Principle::kP4), 1u);  // esg-lint: allow(lint/global-singleton)
  EXPECT_EQ(PrincipleAudit::global().violated(Principle::kP3), 1u);  // esg-lint: allow(lint/global-singleton)
}

TEST(JavaIo, UncaughtCheckedExceptionBecomesProgramScope) {
  // Under the generic discipline an environmental error reaches the
  // program as an IOException; an uncaught IOException *is* a program
  // result — this is exactly how §2.3's laundering happens.
  JvmFixture f;
  f.io = std::make_unique<LocalJavaIo>(f.fs, IoDiscipline::kGeneric);
  f.fs.add_mount("/home", 0);
  f.fs.set_mount_online("/home", false);
  const JvmOutcome out = f.run(
      ProgramBuilder("P").open_read("/home/data", 0).build(), WrapMode::kWrapped);
  EXPECT_EQ(out.exit_code, 1);
  const ResultFile rf = f.result_file();
  ASSERT_TRUE(rf.error.has_value());
  EXPECT_EQ(rf.error->scope(), ErrorScope::kProgram);  // laundered!
  // But the ground-truth label still remembers the injection.
  ASSERT_NE(rf.error->label("injected"), nullptr);
}

TEST(JavaIo, ConciseEscapesEnvironmentalErrorWithTrueScope) {
  JvmFixture f;  // concise by default
  f.fs.add_mount("/home", 0);
  f.fs.set_mount_online("/home", false);
  const JvmOutcome out = f.run(
      ProgramBuilder("P").open_read("/home/data", 0).build(), WrapMode::kWrapped);
  EXPECT_EQ(out.exit_code, 1);  // the exit code still can't tell...
  const ResultFile rf = f.result_file();
  ASSERT_TRUE(rf.error.has_value());
  // ...but the result file carries the true scope.
  EXPECT_EQ(rf.error->scope(), ErrorScope::kLocalResource);
}

TEST(JavaIo, ConciseFileNotFoundStaysProgramResult) {
  // A genuinely contractual error (the program asked for a file that is
  // not there) is the program's own business in both disciplines.
  JvmFixture f;
  const JvmOutcome out = f.run(
      ProgramBuilder("P").open_read("/no/such/file", 0).build(),
      WrapMode::kWrapped);
  EXPECT_EQ(out.exit_code, 1);
  const ResultFile rf = f.result_file();
  ASSERT_TRUE(rf.error.has_value());
  EXPECT_EQ(rf.error->scope(), ErrorScope::kProgram);
}

TEST(JavaIo, ReadAndWriteThroughStreams) {
  JvmFixture f;
  ASSERT_TRUE(f.fs.write_file("/data", "0123456789").ok());
  const JvmOutcome out = f.run(ProgramBuilder("P")
                                   .open_read("/data", 0)
                                   .read(0, 4)
                                   .close_stream(0)
                                   .open_write("/out", 1)
                                   .write(1, 128)
                                   .close_stream(1)
                                   .build(),
                               WrapMode::kBare);
  EXPECT_TRUE(out.completed_main);
  EXPECT_EQ(f.fs.stat("/out").value().size, 128u);
}

// ---- program serialization ----

TEST(Program, SerializationRoundTrip) {
  const JobProgram p = ProgramBuilder("My.Main")
                           .compute(SimTime::msec(5))
                           .open_read("/in", 0)
                           .read(0, 100)
                           .write(0, 50)
                           .close_stream(0)
                           .alloc(1024)
                           .free_all()
                           .exit(2)
                           .build();
  Result<JobProgram> back = deserialize_program(serialize_program(p));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().main_class, "My.Main");
  ASSERT_EQ(back.value().ops.size(), p.ops.size());
  EXPECT_TRUE(back.value().verifies());
}

TEST(Program, CorruptionSurvivesSerialization) {
  const JobProgram p = ProgramBuilder("P").corrupt_image().build();
  EXPECT_FALSE(p.verifies());
  Result<JobProgram> back = deserialize_program(serialize_program(p));
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back.value().verifies());
}

TEST(Program, GarbageImagesRejected) {
  EXPECT_FALSE(deserialize_program("op bogus 1 2 3").ok());
  EXPECT_FALSE(deserialize_program("op throw not-a-kind").ok());
  EXPECT_TRUE(deserialize_program("").ok());  // empty program: legal, no-op
}

// ---- result file ----

TEST(ResultFileTest, RoundTripWithError) {
  ResultFile rf;
  rf.exit_by = ResultFile::ExitBy::kException;
  rf.exit_code = 1;
  rf.error = Error(ErrorKind::kOutOfMemory, "heap exhausted")
                 .with_label("injected", "oom");
  Result<ResultFile> back = ResultFile::parse(rf.encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().exit_by, ResultFile::ExitBy::kException);
  ASSERT_TRUE(back.value().error.has_value());
  EXPECT_EQ(back.value().error->kind(), ErrorKind::kOutOfMemory);
  EXPECT_EQ(back.value().error->scope(), ErrorScope::kVirtualMachine);
  ASSERT_NE(back.value().error->label("injected"), nullptr);
}

TEST(ResultFileTest, DefensiveAgainstGarbage) {
  EXPECT_FALSE(ResultFile::parse("not a classad at all [").ok());
  EXPECT_FALSE(ResultFile::parse("[ExitBy = \"weird\"]").ok());
  EXPECT_FALSE(
      ResultFile::parse("[ExitBy = \"exception\"; ErrorKind = \"zz\"]").ok());
}

}  // namespace
}  // namespace esg::jvm

namespace esg::jvm {
namespace {

// Parameterized sweep: for every throwable kind, the wrapper's recorded
// scope agrees with the canonical taxonomy — a thrown X surfaces at
// program scope (the program's own doing); the kinds the JVM raises
// internally keep their canonical scopes.
class WrapperClassification : public ::testing::TestWithParam<ErrorKind> {};

TEST_P(WrapperClassification, ProgramThrowsAreProgramScope) {
  const ErrorKind kind = GetParam();
  sim::Engine engine(61);
  fs::SimFileSystem fs("exec0");
  (void)fs.mkdirs("/scratch");
  LocalJavaIo io(fs, IoDiscipline::kConcise);
  SimJvm jvm(engine, JvmConfig{});
  bool done = false;
  jvm.run(ProgramBuilder("P").throw_exception(kind).build(), io,
          WrapMode::kWrapped, &fs, "/scratch/.result",
          [&](const JvmOutcome& outcome) {
            done = true;
            EXPECT_EQ(outcome.exit_code, 1);
          });
  engine.run();
  ASSERT_TRUE(done);
  Result<std::string> text = fs.read_file("/scratch/.result");
  ASSERT_TRUE(text.ok());
  Result<ResultFile> rf = ResultFile::parse(text.value());
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rf.value().error.has_value());
  // A throw statement in main is the program's result, whatever the type.
  EXPECT_EQ(rf.value().error->scope(), ErrorScope::kProgram);
  EXPECT_EQ(rf.value().error->kind(), kind);
}

INSTANTIATE_TEST_SUITE_P(
    ThrowableKinds, WrapperClassification,
    ::testing::Values(ErrorKind::kNullPointer,
                      ErrorKind::kArrayIndexOutOfBounds,
                      ErrorKind::kArithmeticError,
                      ErrorKind::kUncaughtException));

// Exit-code sweep: System.exit(x) surfaces x exactly, for edge values too.
class ExitCodeSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExitCodeSweep, ExitCodeIsPreserved) {
  sim::Engine engine(62);
  fs::SimFileSystem fs("exec0");
  (void)fs.mkdirs("/scratch");
  LocalJavaIo io(fs, IoDiscipline::kConcise);
  SimJvm jvm(engine, JvmConfig{});
  int seen = -1;
  jvm.run(ProgramBuilder("P").exit(GetParam()).build(), io, WrapMode::kBare,
          &fs, "/scratch/.result",
          [&](const JvmOutcome& outcome) { seen = outcome.exit_code; });
  engine.run();
  EXPECT_EQ(seen, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Codes, ExitCodeSweep,
                         ::testing::Values(0, 1, 2, 17, 42, 126, 255));

}  // namespace
}  // namespace esg::jvm
