// Tests for esg-lint: the token-level discipline pass. Each rule gets a
// positive (fires) and a negative (stays silent) case over synthetic
// sources, plus the suppression comment, the self-parsed enum vocabulary,
// and the ambiguity filter that keeps the name-based discard rule honest.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hpp"

namespace esg::lint {
namespace {

/// The enum vocabulary every case learns from. Mirrors the real headers'
/// shape: `enum class ErrorKind { ... };` with trailing comma tolerated.
const char* kVocab = R"(
enum class ErrorKind {
  kAlpha,
  kBeta,
  kGamma,
};
enum class ErrorScope { kFunction, kProgram, kPool };
enum class Disposition { kHandled, kMasked, kPropagate };
)";

std::vector<Finding> run(const std::string& body,
                         const std::string& path = "case.cpp") {
  Linter linter;
  linter.scan("vocab.hpp", kVocab);
  linter.scan(path, body);
  linter.lint(path, body);
  return linter.findings();
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       const std::string& rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ---- lint/exhaustive-switch ----

TEST(ExhaustiveSwitch, DefaultLabelIsFlagged) {
  const auto findings = run(R"(
void f(ErrorKind k) {
  switch (k) {
    case ErrorKind::kAlpha: break;
    default: break;
  }
}
)");
  EXPECT_EQ(count_rule(findings, "lint/exhaustive-switch"), 1u);
}

TEST(ExhaustiveSwitch, MissingEnumeratorIsFlaggedByName) {
  const auto findings = run(R"(
void f(ErrorKind k) {
  switch (k) {
    case ErrorKind::kAlpha: break;
    case ErrorKind::kBeta: break;
  }
}
)");
  ASSERT_EQ(count_rule(findings, "lint/exhaustive-switch"), 1u);
  const auto it =
      std::find_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.rule == "lint/exhaustive-switch";
      });
  EXPECT_NE(it->message.find("kGamma"), std::string::npos) << it->message;
}

TEST(ExhaustiveSwitch, CompleteSwitchIsClean) {
  const auto findings = run(R"(
void f(ErrorKind k) {
  switch (k) {
    case ErrorKind::kAlpha: break;
    case ErrorKind::kBeta: break;
    case ErrorKind::kGamma: break;
  }
}
)");
  EXPECT_EQ(count_rule(findings, "lint/exhaustive-switch"), 0u);
}

TEST(ExhaustiveSwitch, ForeignEnumIsIgnored) {
  // Switches over enums outside the error vocabulary are not our business.
  const auto findings = run(R"(
void f(Color c) {
  switch (c) {
    case Color::kRed: break;
    default: break;
  }
}
)");
  EXPECT_EQ(count_rule(findings, "lint/exhaustive-switch"), 0u);
}

TEST(ExhaustiveSwitch, NestedSwitchDoesNotBleedCases) {
  const auto findings = run(R"(
void f(ErrorKind k, ErrorScope s) {
  switch (k) {
    case ErrorKind::kAlpha:
      switch (s) {
        case ErrorScope::kFunction: break;
        case ErrorScope::kProgram: break;
        case ErrorScope::kPool: break;
      }
      break;
    case ErrorKind::kBeta: break;
    case ErrorKind::kGamma: break;
  }
}
)");
  EXPECT_EQ(count_rule(findings, "lint/exhaustive-switch"), 0u);
}

// ---- lint/discarded-result ----

TEST(DiscardedResult, StatementLevelCallIsFlagged) {
  const auto findings = run(R"(
Result<int> fetch_thing(int n);
void g() {
  fetch_thing(3);
}
)");
  EXPECT_EQ(count_rule(findings, "lint/discarded-result"), 1u);
}

TEST(DiscardedResult, ConsumedValueIsClean) {
  const auto findings = run(R"(
Result<int> fetch_thing(int n);
void g() {
  auto r = fetch_thing(3);
  if (fetch_thing(4)) {}
  int v = fetch_thing(5) ? 1 : 0;
}
)");
  EXPECT_EQ(count_rule(findings, "lint/discarded-result"), 0u);
}

TEST(DiscardedResult, AmbiguousNameIsNotFlagged) {
  // `size` is declared both Result-returning and plain: too ambiguous for
  // a token-level rule, so the discard check must stand down.
  const auto findings = run(R"(
Result<int> size(int fd);
int size(const Buffer& b);
void g(Buffer& b) {
  size(b);
}
)");
  EXPECT_EQ(count_rule(findings, "lint/discarded-result"), 0u);
}

TEST(DiscardedResult, ForHeaderSemicolonsAreNotStatementEnds) {
  const auto findings = run(R"(
Result<int> fetch_thing(int n);
void g(const std::vector<int>& rules) {
  for (std::size_t i = 0; i < rules.size(); ++i) {
    int x = i;
  }
}
)");
  EXPECT_EQ(count_rule(findings, "lint/discarded-result"), 0u);
}

// ---- lint/naked-throw ----

TEST(NakedThrow, ThrowOutsideEscapeIsFlagged) {
  const auto findings = run(R"(
void g() { throw 42; }
)");
  EXPECT_EQ(count_rule(findings, "lint/naked-throw"), 1u);
}

TEST(NakedThrow, EscapeHeaderIsExempt) {
  const auto findings = run(R"(
void raise(Error e) { throw EscapingError(e); }
)",
                            "src/core/escape.hpp");
  EXPECT_EQ(count_rule(findings, "lint/naked-throw"), 0u);
}

// ---- lint/unraised-scope ----

TEST(UnraisedScope, ListeningOnSilentFrequencyIsFlagged) {
  const auto findings = run(R"(
void g(ScopeRouter& router) {
  router.register_handler(ErrorScope::kPool, "user", handler);
}
)");
  EXPECT_EQ(count_rule(findings, "lint/unraised-scope"), 1u);
}

TEST(UnraisedScope, RaisedScopeIsClean) {
  const auto findings = run(R"(
void g(ScopeRouter& router) {
  router.register_handler(ErrorScope::kPool, "user", handler);
  Error e(ErrorKind::kAlpha, ErrorScope::kPool, "raised here");
}
)");
  EXPECT_EQ(count_rule(findings, "lint/unraised-scope"), 0u);
}

// ---- lint/global-singleton ----

TEST(GlobalSingleton, ShimCallsAreFlagged) {
  const auto findings = run(R"(
void g() {
  LogSink::instance().set_level(LogLevel::kInfo);
  FlightRecorder::global().set_enabled(true);
  auto& audit = PrincipleAudit::global();
}
)");
  EXPECT_EQ(count_rule(findings, "lint/global-singleton"), 3u);
}

TEST(GlobalSingleton, DefiningFilesAreExempt) {
  EXPECT_EQ(count_rule(run(R"(
LogSink& LogSink::instance() { static LogSink sink; return sink; }
)",
                          "src/common/log.cpp"),
                       "lint/global-singleton"),
            0u);
  EXPECT_EQ(count_rule(run(R"(
FlightRecorder& FlightRecorder::global() { static FlightRecorder r; return r; }
)",
                          "src/obs/trace.cpp"),
                       "lint/global-singleton"),
            0u);
  EXPECT_EQ(count_rule(run(R"(
PrincipleAudit& PrincipleAudit::global() { static PrincipleAudit a; return a; }
)",
                          "src/core/audit.cpp"),
                       "lint/global-singleton"),
            0u);
}

TEST(GlobalSingleton, AllowMarkerSilencesCompatFallbacks) {
  const auto findings = run(R"(
LogSink& sink() const {
  // Compat fallback for unbound loggers.  esg-lint: allow(lint/global-singleton)
  return sink_ != nullptr ? *sink_ : LogSink::instance();
}
)");
  EXPECT_EQ(count_rule(findings, "lint/global-singleton"), 0u);
}

TEST(GlobalSingleton, BoundContextUseIsClean) {
  const auto findings = run(R"(
void g(sim::Engine& engine) {
  engine.context().recorder().set_enabled(true);
  engine.context().audit().reset();
}
)");
  EXPECT_EQ(count_rule(findings, "lint/global-singleton"), 0u);
}

// ---- lint/dangling-flow ----

TEST(DanglingFlow, TypoedEndpointIsFlaggedByName) {
  const auto findings = run(R"(
void wire(analysis::TopologyModel& model) {
  model.declare_detection({"jvm", "jvm.execute", {ErrorKind::kAlpha}});
  model.declare_flow("jvm.exeucte", "user.results");
}
)");
  ASSERT_EQ(count_rule(findings, "lint/dangling-flow"), 2u);
  EXPECT_NE(findings[0].message.find("jvm.exeucte"), std::string::npos)
      << findings[0].message;
}

TEST(DanglingFlow, DeclaredEndpointsAreClean) {
  // All three learning idioms at once: the declare_detection brace
  // literals, a `.routine =` assignment, and an ErrorInterface
  // constructor; every flow endpoint resolves, so the rule stays silent.
  const auto findings = run(R"(
void wire(analysis::TopologyModel& model) {
  model.declare_detection({"jvm", "jvm.execute", {ErrorKind::kAlpha}});
  analysis::InterfaceDecl user;
  user.routine = "user.results";
  model.declare_interface(std::move(user));
  static const ErrorInterface contract("JavaIo.open",
                                       {ErrorKind::kBeta});
  model.declare_flow("jvm.execute", "JavaIo.open");
  model.declare_flow("JavaIo.open", "user.results");
}
)");
  EXPECT_EQ(count_rule(findings, "lint/dangling-flow"), 0u);
}

TEST(DanglingFlow, NodesLearnedAcrossFilesResolve) {
  // The declaration and the wiring live in different translation units
  // (each daemon's describe_topology() vs pool/topology.cpp); scan() must
  // pool node names across every scanned file before lint() judges edges.
  Linter linter;
  linter.scan("vocab.hpp", kVocab);
  linter.scan("daemon.cpp", R"(
void describe(analysis::TopologyModel& model) {
  model.declare_detection({"shadow", "shadow.classify", {ErrorKind::kAlpha}});
  analysis::InterfaceDecl attempt;
  attempt.routine = "shadow.attempt";
  model.declare_interface(std::move(attempt));
}
)");
  const char* pool = R"(
void wire(analysis::TopologyModel& model) {
  model.declare_flow("shadow.classify", "shadow.attempt");
}
)";
  linter.scan("pool.cpp", pool);
  linter.lint("pool.cpp", pool);
  EXPECT_EQ(count_rule(linter.findings(), "lint/dangling-flow"), 0u);
  EXPECT_EQ(linter.topology_nodes().count("shadow.classify"), 1u);
  EXPECT_EQ(linter.topology_nodes().count("shadow.attempt"), 1u);
}

TEST(DanglingFlow, ComputedEndpointsAreIgnored) {
  // `contract->routine()` is beyond a token-level pass: only the literal
  // endpoint is judged.
  const auto findings = run(R"(
void wire(analysis::TopologyModel& model) {
  analysis::InterfaceDecl prog;
  prog.routine = "program.catch";
  model.declare_interface(std::move(prog));
  model.declare_flow(contract->routine(), "program.catch");
}
)");
  EXPECT_EQ(count_rule(findings, "lint/dangling-flow"), 0u);
}

TEST(DanglingFlow, AllowMarkerSilencesTheRule) {
  const auto findings = run(R"(
void wire(analysis::TopologyModel& model) {
  // esg-lint: allow(lint/dangling-flow)
  model.declare_flow("synthetic.from", "synthetic.to");
}
)");
  EXPECT_EQ(count_rule(findings, "lint/dangling-flow"), 0u);
}

// ---- suppressions ----

TEST(Suppression, SameLineAllowSilencesTheRule) {
  const auto findings = run(R"(
void g() { throw 42; }  // esg-lint: allow(lint/naked-throw)
)");
  EXPECT_EQ(count_rule(findings, "lint/naked-throw"), 0u);
}

TEST(Suppression, PrecedingLineAllowSilencesTheRule) {
  const auto findings = run(R"(
Result<int> fetch_thing(int n);
void g() {
  // esg-lint: allow(lint/discarded-result)
  fetch_thing(3);
}
)");
  EXPECT_EQ(count_rule(findings, "lint/discarded-result"), 0u);
}

TEST(Suppression, AllowForOtherRuleDoesNotSilence) {
  const auto findings = run(R"(
void g() { throw 42; }  // esg-lint: allow(lint/discarded-result)
)");
  EXPECT_EQ(count_rule(findings, "lint/naked-throw"), 1u);
}

// ---- vocabulary self-parsing & rendering ----

TEST(Vocabulary, EnumsAreLearnedFromScannedSources) {
  Linter linter;
  linter.scan("vocab.hpp", kVocab);
  const auto& enums = linter.enums();
  ASSERT_EQ(enums.count("ErrorKind"), 1u);
  EXPECT_EQ(enums.at("ErrorKind"),
            (std::vector<std::string>{"kAlpha", "kBeta", "kGamma"}));
  ASSERT_EQ(enums.count("Disposition"), 1u);
  EXPECT_EQ(enums.at("Disposition").size(), 3u);
}

TEST(Vocabulary, ResultFunctionsAreLearned) {
  Linter linter;
  linter.scan("f.hpp", "Result<int> fetch_thing(int n);\n");
  EXPECT_EQ(linter.result_functions().count("fetch_thing"), 1u);
}

// ---- lint/naked-retry ----

TEST(NakedRetry, CountingForLoopIsFlagged) {
  const auto findings = run(R"(
void f() {
  for (int attempt = 0; attempt < 8; ++attempt) { step(); }
}
)");
  EXPECT_EQ(count_rule(findings, "lint/naked-retry"), 1u);
}

TEST(NakedRetry, WhileAgainstABudgetIsFlagged) {
  const auto findings = run(R"(
void f(int budget) {
  int retries = 0;
  while (retries < budget) { step(); ++retries; }
}
)");
  EXPECT_EQ(count_rule(findings, "lint/naked-retry"), 1u);
}

TEST(NakedRetry, RangeForOverAttemptRecordsIsClean) {
  // Iterating attempt *records* is bookkeeping, not recovery: there is no
  // counting operator in the header, so the rule stays quiet.
  const auto findings = run(R"(
void f(const Record& record) {
  for (const auto& attempt : record.attempts) { tally(attempt); }
}
)");
  EXPECT_EQ(count_rule(findings, "lint/naked-retry"), 0u);
}

TEST(NakedRetry, AllowMarkerSuppresses) {
  const auto findings = run(R"(
void f() {
  // esg-lint: allow(naked-retry) -- rejection sampling, not recovery
  for (int attempt = 0; attempt < 8; ++attempt) { redraw(); }
}
)");
  EXPECT_EQ(count_rule(findings, "lint/naked-retry"), 0u);
}

TEST(NakedRetry, TheCatalogItselfIsExempt) {
  // src/resilience/ is where attempt counting is supposed to live; the
  // rule must not flag the strategies it is herding everyone toward.
  const auto findings = run(R"(
void f() {
  for (int attempt = 0; attempt < 8; ++attempt) { step(); }
}
)",
                            "src/resilience/strategy.cpp");
  EXPECT_EQ(count_rule(findings, "lint/naked-retry"), 0u);
}

TEST(Rendering, FindingStrAndSarifCarryRuleAndLocation) {
  const auto findings = run("void g() { throw 42; }\n", "src/x.cpp");
  ASSERT_EQ(findings.size(), 1u);
  const std::string line = findings[0].str();
  EXPECT_NE(line.find("src/x.cpp"), std::string::npos);
  EXPECT_NE(line.find("lint/naked-throw"), std::string::npos);

  const std::string doc = to_sarif(findings);
  EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(doc.find("\"ruleId\": \"lint/naked-throw\""), std::string::npos);
  EXPECT_NE(doc.find("src/x.cpp"), std::string::npos);
}

TEST(Rendering, CleanFileProducesNoFindings) {
  const auto findings = run(R"(
int add(int a, int b) { return a + b; }
)");
  EXPECT_TRUE(findings.empty());
}

}  // namespace
}  // namespace esg::lint
