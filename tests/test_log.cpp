// Tests for the logging substrate and common string utilities.
#include <gtest/gtest.h>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace esg {
namespace {

struct CapturedLog {
  std::vector<std::string> lines;

  CapturedLog() {
    LogSink::instance().set_writer(  // esg-lint: allow(lint/global-singleton)
        [this](const std::string& line) { lines.push_back(line); });
    LogSink::instance().set_level(LogLevel::kTrace);  // esg-lint: allow(lint/global-singleton)
  }
  ~CapturedLog() {
    LogSink::instance().set_level(LogLevel::kOff);  // esg-lint: allow(lint/global-singleton)
    LogSink::instance().set_writer([](const std::string&) {});  // esg-lint: allow(lint/global-singleton)
    LogSink::instance().clear_clock();  // esg-lint: allow(lint/global-singleton)
  }
};

TEST(Log, ComponentAndMessageAppear) {
  CapturedLog capture;
  Logger log("schedd@submit0");
  log.info("job ", 42, " completed");
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_NE(capture.lines[0].find("schedd@submit0"), std::string::npos);
  EXPECT_NE(capture.lines[0].find("job 42 completed"), std::string::npos);
  EXPECT_NE(capture.lines[0].find("INFO"), std::string::npos);
}

TEST(Log, LevelFiltering) {
  CapturedLog capture;
  LogSink::instance().set_level(LogLevel::kWarn);  // esg-lint: allow(lint/global-singleton)
  Logger log("x");
  log.debug("hidden");
  log.info("hidden");
  log.warn("visible");
  log.error("visible");
  EXPECT_EQ(capture.lines.size(), 2u);
}

TEST(Log, OffSuppressesEverything) {
  CapturedLog capture;
  LogSink::instance().set_level(LogLevel::kOff);  // esg-lint: allow(lint/global-singleton)
  Logger log("x");
  log.error("even errors");
  EXPECT_TRUE(capture.lines.empty());
}

TEST(Log, ClockPrefixesSimTime) {
  CapturedLog capture;
  LogSink::instance().set_clock([] { return SimTime::sec(3); });  // esg-lint: allow(lint/global-singleton)
  Logger log("x");
  log.info("tick");
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_NE(capture.lines[0].find("[3.000s]"), std::string::npos);
}

// ---- string utilities ----

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, SplitN) {
  EXPECT_EQ(split_n("a b c d", ' ', 3),
            (std::vector<std::string>{"a", "b", "c d"}));
  EXPECT_EQ(split_n("a", ' ', 3), (std::vector<std::string>{"a"}));
  EXPECT_EQ(split_n("a b", ' ', 1), (std::vector<std::string>{"a b"}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, CaseHelpers) {
  EXPECT_TRUE(iequals("HasJava", "hasjava"));
  EXPECT_FALSE(iequals("a", "ab"));
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
}

TEST(Strings, Strfmt) {
  EXPECT_EQ(strfmt("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strfmt("%.2f", 1.5), "1.50");
  EXPECT_EQ(strfmt("empty"), "empty");
}

}  // namespace
}  // namespace esg
