// Indexed matchmaking equivalence + inbound-channel hygiene.
//
// The ad index is a prefilter over the same authoritative two-way match,
// visiting candidates in the same machine-name order the exhaustive scan
// uses — so a pool negotiated with the index must be byte-identical in
// every observable (report, journal, event count, matches made) to one
// negotiated exhaustively. These tests pin that equivalence on a mixed
// indexable/un-indexable workload, under a chaos fault plan, and assert
// the whole point: an order of magnitude fewer full match evaluations.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/plan.hpp"
#include "classad/classad.hpp"
#include "daemons/matchmaker.hpp"
#include "daemons/rpc.hpp"
#include "daemons/wire.hpp"
#include "net/fabric.hpp"
#include "pool/pool.hpp"
#include "pool/sweep.hpp"
#include "pool/workload.hpp"
#include "sim/engine.hpp"

namespace esg {
namespace {

using daemons::IndexMode;

// ---- pool-level byte identity ----

pool::PoolConfig mixed_pool_config(std::uint64_t seed, IndexMode mode) {
  pool::PoolConfig config;
  config.seed = seed;
  config.index_mode = mode;
  config.trace = true;
  config.discipline = daemons::DisciplineConfig::scoped();
  // Heterogeneous machines: memory tiers, a broken-Java black hole, and
  // an owner policy (un-indexable machine-side Requirements are fine; the
  // index only profiles the job side).
  for (int i = 0; i < 6; ++i) {
    pool::MachineSpec spec = pool::MachineSpec::good("exec" + std::to_string(i));
    spec.startd.memory_mb = (i % 3 == 0) ? 128 : (i % 3 == 1) ? 512 : 1024;
    config.machines.push_back(std::move(spec));
  }
  config.machines.push_back(pool::MachineSpec::misconfigured_java("bad0"));
  pool::MachineSpec vip = pool::MachineSpec::good("vip0");
  vip.startd.start_expr = "TARGET.Owner == \"vip\"";
  config.machines.push_back(std::move(vip));
  return config;
}

void submit_mixed_workload(pool::Pool& pool, std::uint64_t seed) {
  pool::stage_workload_inputs(pool);
  pool::WorkloadOptions options;
  options.count = 12;
  options.mean_compute = SimTime::sec(4);
  options.remote_io_fraction = 0.25;
  options.program_error_fraction = 0.1;
  Rng rng(seed * 31 + 7);
  std::vector<daemons::JobDescription> jobs = pool::make_workload(options, rng);
  // A grid of requirement shapes: equality, `=?=`, thresholds, and two
  // un-indexable forms (disjunction, negated inequality) that force the
  // exhaustive fallback for those jobs.
  const std::vector<std::string> requirement_grid = {
      "TARGET.HasJava =?= true",
      "TARGET.HasJava =?= true && TARGET.Memory >= 512",
      "TARGET.HasJava =?= true && TARGET.Memory >= 256 && "
      "TARGET.Memory <= 1024",
      "TARGET.HasJava =?= true && (TARGET.Memory >= 2048 || "
      "TARGET.Memory <= 1024)",
      "TARGET.HasJava =?= true && TARGET.Memory != 32",
  };
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].requirements = requirement_grid[i % requirement_grid.size()];
    pool.submit(std::move(jobs[i]));
  }
}

struct PoolFingerprint {
  std::string report;
  std::uint64_t events = 0;
  std::uint64_t matches = 0;
  std::uint64_t evals = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t spans = 0;
};

PoolFingerprint run_mixed_pool(std::uint64_t seed, IndexMode mode) {
  pool::Pool pool(mixed_pool_config(seed, mode));
  submit_mixed_workload(pool, seed);
  EXPECT_TRUE(pool.run_until_done(SimTime::hours(2)));
  PoolFingerprint fp;
  fp.report = pool.report().str();
  fp.events = pool.engine().executed();
  fp.matches = pool.matchmaker().matches_made();
  fp.evals = pool.matchmaker().match_evals();
  fp.mismatches = pool.matchmaker().index_mismatches();
  fp.spans = pool.recorder().total_recorded();
  return fp;
}

TEST(MatchIndexEquivalence, IndexedPoolRunIsByteIdenticalToExhaustive) {
  const PoolFingerprint indexed = run_mixed_pool(2002, IndexMode::kIndexed);
  const PoolFingerprint exhaustive =
      run_mixed_pool(2002, IndexMode::kExhaustive);

  EXPECT_EQ(indexed.report, exhaustive.report);
  EXPECT_EQ(indexed.events, exhaustive.events);
  EXPECT_EQ(indexed.matches, exhaustive.matches);
  EXPECT_EQ(indexed.spans, exhaustive.spans);
  // The index must also have *done* something: strictly fewer full
  // evaluations on a workload where most jobs are indexable.
  EXPECT_LT(indexed.evals, exhaustive.evals);
}

TEST(MatchIndexEquivalence, VerifyModeSeesZeroMismatches) {
  const PoolFingerprint verified = run_mixed_pool(2002, IndexMode::kVerify);
  const PoolFingerprint exhaustive =
      run_mixed_pool(2002, IndexMode::kExhaustive);
  EXPECT_EQ(verified.mismatches, 0u);
  EXPECT_EQ(verified.report, exhaustive.report);
  EXPECT_EQ(verified.events, exhaustive.events);
  EXPECT_EQ(verified.matches, exhaustive.matches);
}

TEST(MatchIndexEquivalence, HoldsAcrossSeeds) {
  for (const std::uint64_t seed : {7ull, 11ull, 23ull}) {
    const PoolFingerprint indexed = run_mixed_pool(seed, IndexMode::kIndexed);
    const PoolFingerprint exhaustive =
        run_mixed_pool(seed, IndexMode::kExhaustive);
    EXPECT_EQ(indexed.report, exhaustive.report) << "seed " << seed;
    EXPECT_EQ(indexed.events, exhaustive.events) << "seed " << seed;
    EXPECT_EQ(indexed.matches, exhaustive.matches) << "seed " << seed;
  }
}

// ---- equivalence under a chaos fault plan ----

TEST(MatchIndexEquivalence, HoldsUnderChaosFaultPlan) {
  chaos::PlanShape shape;
  shape.hosts = {"exec0", "exec1", "exec2", "exec3"};
  const chaos::FaultPlan plan = chaos::make_random_plan(4242, shape);
  ASSERT_FALSE(plan.empty());

  pool::SweepCell indexed = chaos::CampaignRunner::make_cell(plan, "indexed");
  pool::SweepCell exhaustive =
      chaos::CampaignRunner::make_cell(plan, "exhaustive");
  exhaustive.config.index_mode = IndexMode::kExhaustive;
  pool::SweepCell verify = chaos::CampaignRunner::make_cell(plan, "verify");
  verify.config.index_mode = IndexMode::kVerify;

  const pool::SweepReport sweep =
      pool::SweepRunner(3).run({indexed, exhaustive, verify});
  ASSERT_EQ(sweep.cells.size(), 3u);
  const pool::CellOutcome& a = sweep.cells[0];
  const pool::CellOutcome& b = sweep.cells[1];
  const pool::CellOutcome& c = sweep.cells[2];
  EXPECT_TRUE(a.finished);
  EXPECT_EQ(a.report.str(), b.report.str());
  EXPECT_EQ(a.engine_events, b.engine_events);
  EXPECT_EQ(a.journal, b.journal);
  EXPECT_EQ(a.report.str(), c.report.str());
  EXPECT_EQ(a.engine_events, c.engine_events);
  EXPECT_EQ(a.journal, c.journal);
}

// ---- the scale claim: >= 10x fewer full evaluations ----

classad::ClassAd machine_ad(const std::string& name, const std::string& arch,
                            const std::string& opsys, std::int64_t memory) {
  classad::ClassAd ad;
  ad.set("MyType", "Machine");
  ad.set("Name", name);
  ad.set("Machine", name);
  ad.set("StartdPort", 9620);
  ad.set("State", "Unclaimed");
  ad.set("Arch", arch);
  ad.set("OpSys", opsys);
  ad.set("Memory", memory);
  ad.set("HasJava", true);
  ad.set("Requirements", true);
  ad.set("Rank", 0);
  return ad;
}

/// Drive one matchmaker directly: 240 machines across 12 (Arch, OpSys)
/// tiers, 24 jobs pinned to their tier, one negotiation cycle.
struct CycleStats {
  std::uint64_t evals = 0;
  std::uint64_t matches = 0;
};

CycleStats run_tiered_cycle(IndexMode mode) {
  sim::Engine engine{97};
  net::NetworkFabric fabric{engine};
  const daemons::Ports ports;
  const daemons::Timeouts timeouts;
  daemons::Matchmaker mm(engine, fabric, "central", ports, timeouts);
  mm.set_index_mode(mode);
  mm.boot();

  const std::vector<std::string> arches = {"INTEL", "SUN4u", "PPC", "ALPHA"};
  const std::vector<std::string> systems = {"LINUX", "SOLARIS28", "OSF1"};
  std::vector<std::shared_ptr<daemons::RpcChannel>> keepalive;

  const auto advertise = [&](const std::string& command, classad::ClassAd ad) {
    daemons::rpc_connect(
        engine, fabric, "feeder", mm.address(), timeouts.rpc_timeout,
        [&keepalive, command, ad = std::move(ad)](
            Result<std::shared_ptr<daemons::RpcChannel>> channel) {
          ASSERT_TRUE(channel.ok());
          channel.value()->notify(command, ad);
          channel.value()->close();
          keepalive.push_back(channel.value());
        });
  };

  int machine_index = 0;
  for (const std::string& arch : arches) {
    for (const std::string& opsys : systems) {
      for (int i = 0; i < 20; ++i) {
        const std::string name = "m" + std::to_string(machine_index++);
        advertise(daemons::kCmdUpdateStartdAd,
                  machine_ad(name, arch, opsys, 256 << (i % 3)));
      }
    }
  }

  std::vector<classad::Value> jobs;
  int job_id = 0;
  for (const std::string& arch : arches) {
    for (const std::string& opsys : systems) {
      for (int i = 0; i < 2; ++i) {
        auto job = std::make_shared<classad::ClassAd>();
        job->set("MyType", "Job");
        job->set("JobId", job_id++);
        job->set("ImageSizeMB", 16);
        EXPECT_TRUE(job->insert_expr("Requirements",
                                     "TARGET.Arch == \"" + arch +
                                         "\" && TARGET.OpSys == \"" + opsys +
                                         "\"")
                        .ok());
        EXPECT_TRUE(job->insert_expr("Rank", "0").ok());
        jobs.push_back(classad::Value::ad(std::move(job)));
      }
    }
  }
  classad::ClassAd submitter;
  submitter.set("MyType", "Submitter");
  submitter.set("Name", "schedd@sub");
  submitter.set("ScheddHost", "sub");
  submitter.set("ScheddPort", 9619);
  submitter.insert("Jobs", std::make_unique<classad::Literal>(
                               classad::Value::list(std::move(jobs))));
  advertise(daemons::kCmdUpdateSubmitterAd, submitter);

  // One negotiation cycle (interval 5s); match notifications towards the
  // absent schedd fail benignly.
  engine.run(timeouts.matchmaker_interval + SimTime::sec(1));
  EXPECT_EQ(mm.known_startds(), 240u);
  EXPECT_EQ(mm.index_mismatches(), 0u);
  return CycleStats{mm.match_evals(), mm.matches_made()};
}

TEST(MatchIndexScale, TenTimesFewerEvaluationsPerCycle) {
  const CycleStats indexed = run_tiered_cycle(IndexMode::kIndexed);
  const CycleStats exhaustive = run_tiered_cycle(IndexMode::kExhaustive);
  EXPECT_EQ(indexed.matches, exhaustive.matches);
  EXPECT_EQ(indexed.matches, 24u);  // every tiered job found its machine
  ASSERT_GT(indexed.evals, 0u);
  // The acceptance bar: at least one order of magnitude fewer full
  // symmetric_match evaluations than the exhaustive baseline.
  EXPECT_GE(exhaustive.evals, 10 * indexed.evals)
      << "exhaustive=" << exhaustive.evals << " indexed=" << indexed.evals;
}

// ---- inbound channel hygiene ----

TEST(MatchmakerChannels, PrunedOnCloseNotEvery64thAccept) {
  sim::Engine engine{83};
  net::NetworkFabric fabric{engine};
  const daemons::Ports ports;
  const daemons::Timeouts timeouts;
  daemons::Matchmaker mm(engine, fabric, "central", ports, timeouts);
  mm.boot();

  std::vector<std::shared_ptr<daemons::RpcChannel>> clients;
  for (int i = 0; i < 10; ++i) {
    daemons::rpc_connect(
        engine, fabric, "host" + std::to_string(i), mm.address(),
        timeouts.rpc_timeout,
        [&clients, i](Result<std::shared_ptr<daemons::RpcChannel>> channel) {
          ASSERT_TRUE(channel.ok());
          clients.push_back(channel.value());
          channel.value()->notify(
              daemons::kCmdUpdateStartdAd,
              machine_ad("m" + std::to_string(i), "INTEL", "LINUX", 512));
          channel.value()->close();
        });
  }
  engine.run(SimTime::sec(2));

  EXPECT_EQ(mm.known_startds(), 10u);
  // Every advertiser hung up, so — well before any 64th accept — the
  // matchmaker must hold zero inbound channels.
  EXPECT_EQ(mm.inbound_channels(), 0u);
}

}  // namespace
}  // namespace esg
