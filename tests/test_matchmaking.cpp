// Matchmaker behaviour at the pool level: rank preferences, requirements
// filtering, and negotiation fairness.
#include <gtest/gtest.h>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

namespace esg::pool {
namespace {

TEST(Matchmaking, JobRankPrefersBigMemoryMachines) {
  PoolConfig config;
  config.seed = 71;
  config.discipline = daemons::DisciplineConfig::scoped();
  MachineSpec small = MachineSpec::good("aaa_small");
  small.startd.memory_mb = 128;
  MachineSpec big = MachineSpec::good("zzz_big");
  big.startd.memory_mb = 4096;
  config.machines.push_back(small);
  config.machines.push_back(big);
  Pool pool(config);

  daemons::JobDescription job = make_hello_job(SimTime::sec(5));
  job.rank = "TARGET.Memory";  // prefer the big machine
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::minutes(30)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  ASSERT_EQ(record->state, daemons::JobState::kCompleted);
  EXPECT_EQ(record->attempts[0].machine, "zzz_big");
}

TEST(Matchmaking, JobRequirementsFilterByMemory) {
  PoolConfig config;
  config.seed = 72;
  config.discipline = daemons::DisciplineConfig::scoped();
  MachineSpec small = MachineSpec::good("aaa_small");
  small.startd.memory_mb = 128;
  config.machines.push_back(small);
  Pool pool(config);

  daemons::JobDescription picky = make_hello_job(SimTime::sec(5));
  picky.requirements = "TARGET.HasJava =?= true && TARGET.Memory >= 1024";
  const JobId id = pool.submit(std::move(picky));
  EXPECT_FALSE(pool.run_until_done(SimTime::minutes(5)));
  EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kIdle);
}

TEST(Matchmaking, OwnerPolicyFiltersByJobAttribute) {
  PoolConfig config;
  config.seed = 73;
  config.discipline = daemons::DisciplineConfig::scoped();
  MachineSpec vip_only = MachineSpec::good("aaa_vip");
  vip_only.startd.start_expr = "TARGET.Owner == \"vip\"";
  config.machines.push_back(vip_only);
  config.machines.push_back(MachineSpec::good("zzz_any"));
  Pool pool(config);

  daemons::JobDescription peasant_job = make_hello_job(SimTime::sec(5));
  peasant_job.owner = "peasant";
  const JobId peasant = pool.submit(std::move(peasant_job));
  daemons::JobDescription vip_job = make_hello_job(SimTime::sec(5));
  vip_job.owner = "vip";
  const JobId vip = pool.submit(std::move(vip_job));

  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  // The peasant's job could only ever run on zzz_any.
  for (const auto& attempt : pool.schedd().job(peasant)->attempts) {
    EXPECT_EQ(attempt.machine, "zzz_any");
  }
  EXPECT_EQ(pool.schedd().job(vip)->state, daemons::JobState::kCompleted);
}

TEST(Matchmaking, ManyJobsSpreadAcrossMachines) {
  PoolConfig config;
  config.seed = 74;
  config.discipline = daemons::DisciplineConfig::scoped();
  for (int i = 0; i < 4; ++i) {
    config.machines.push_back(MachineSpec::good("exec" + std::to_string(i)));
  }
  Pool pool(config);
  for (int i = 0; i < 16; ++i) {
    pool.submit(make_hello_job(SimTime::sec(30)));
  }
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(2)));
  // Every machine did some of the work.
  std::map<std::string, int> per_machine;
  for (const auto& truth : pool.ground_truth().entries()) {
    ++per_machine[truth.machine];
  }
  EXPECT_EQ(per_machine.size(), 4u);
  for (const auto& [machine, count] : per_machine) {
    EXPECT_GE(count, 2) << machine;
  }
}

TEST(Matchmaking, MachineRankBreaksTies) {
  // Two machines accept; the job is indifferent (rank 0); the machine
  // advertising a higher Rank for this job should win. Machine Rank is an
  // expression over the job ad.
  PoolConfig config;
  config.seed = 75;
  config.discipline = daemons::DisciplineConfig::scoped();
  MachineSpec eager = MachineSpec::good("aaa_eager");
  config.machines.push_back(eager);
  config.machines.push_back(MachineSpec::good("zzz_meh"));
  Pool pool(config);
  // Patch the eager machine's rank after construction via its config is
  // not exposed; instead give the *job* a rank that names the machine.
  daemons::JobDescription job = make_hello_job(SimTime::sec(5));
  job.rank = "TARGET.Machine == \"zzz_meh\" ? 10 : 0";
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::minutes(30)));
  EXPECT_EQ(pool.schedd().job(id)->attempts[0].machine, "zzz_meh");
}

}  // namespace
}  // namespace esg::pool
