// Multi-submitter pools: several schedds sharing one matchmaker and one
// set of execution machines.
#include <gtest/gtest.h>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

namespace esg::pool {
namespace {

PoolConfig two_submitters(std::uint64_t seed) {
  PoolConfig config;
  config.seed = seed;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.submit.name = "submit0";
  config.extra_submitters.push_back(SubmitSpec{"submit1", 0});
  config.machines.push_back(MachineSpec::good("exec0"));
  config.machines.push_back(MachineSpec::good("exec1"));
  config.machines.push_back(MachineSpec::good("exec2"));
  return config;
}

TEST(MultiSubmit, BothSubmittersGetWorkDone) {
  Pool pool(two_submitters(61));
  std::vector<JobId> a;
  std::vector<JobId> b;
  for (int i = 0; i < 4; ++i) {
    a.push_back(pool.submit(make_hello_job(SimTime::sec(5))));
    b.push_back(pool.submit_at("submit1", make_hello_job(SimTime::sec(5))));
  }
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  for (const JobId id : a) {
    EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
  }
  daemons::Schedd* other = pool.schedd_at("submit1");
  ASSERT_NE(other, nullptr);
  for (const JobId id : b) {
    EXPECT_EQ(other->job(id)->state, daemons::JobState::kCompleted);
  }
  const PoolReport report = pool.report();
  EXPECT_EQ(report.jobs_total, 8);
  EXPECT_EQ(report.unfinished, 0);
}

TEST(MultiSubmit, JobIdsAreDisjointAcrossSchedds) {
  Pool pool(two_submitters(62));
  const JobId a = pool.submit(make_hello_job());
  const JobId b = pool.submit_at("submit1", make_hello_job());
  EXPECT_NE(a.value(), b.value());
  EXPECT_GE(b.value(), 1000000u);
}

TEST(MultiSubmit, SubmittersFailIndependently) {
  // submit1's home filesystem goes (and stays) offline; its remote-I/O job
  // stalls in retry, while submit0's work is unaffected.
  PoolConfig config = two_submitters(63);
  Pool pool(config);
  stage_workload_inputs(pool);  // stages on submit0

  const JobId healthy = pool.submit(make_hello_job(SimTime::sec(5)));
  daemons::JobDescription io_job;
  io_job.program = jvm::ProgramBuilder("reader").compute(SimTime::sec(1)).build();
  // A *declared* input that was never staged on submit1: job scope
  // (Figure 3 — "a missing input file has job scope").
  io_job.input_files = {"/home/data/never_staged_here"};
  const JobId starved = pool.submit_at("submit1", std::move(io_job));
  const bool all_done = pool.run_until_done(SimTime::minutes(30));
  EXPECT_TRUE(all_done);
  EXPECT_EQ(pool.schedd().job(healthy)->state,
            daemons::JobState::kCompleted);
  EXPECT_EQ(pool.schedd_at("submit1")->job(starved)->state,
            daemons::JobState::kUnexecutable);
}

TEST(MultiSubmit, ScarceMachinesAreShared) {
  // One machine, two submitters, work from both: everything completes and
  // attempts interleave.
  PoolConfig config;
  config.seed = 64;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.extra_submitters.push_back(SubmitSpec{"submit1", 0});
  config.machines.push_back(MachineSpec::good("only0"));
  Pool pool(config);
  for (int i = 0; i < 3; ++i) {
    pool.submit(make_hello_job(SimTime::sec(10)));
    pool.submit_at("submit1", make_hello_job(SimTime::sec(10)));
  }
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(2)));
  const PoolReport report = pool.report();
  EXPECT_EQ(report.jobs_total, 6);
  EXPECT_EQ(report.completed_genuine, 6);
  // Ground truth shows both submitters' jobs ran on the shared machine.
  bool low = false;
  bool high = false;
  for (const auto& truth : pool.ground_truth().entries()) {
    (truth.job_id < 1000000 ? low : high) = true;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

}  // namespace
}  // namespace esg::pool
