// Unit tests for the simulated network fabric.
#include <gtest/gtest.h>

#include "net/fabric.hpp"

namespace esg::net {
namespace {

struct Fixture {
  sim::Engine engine{7};
  NetworkFabric fabric{engine};
};

TEST(Fabric, ConnectAndExchangeMessages) {
  Fixture f;
  std::string server_got;
  std::string client_got;
  Endpoint server_end;
  ASSERT_TRUE(f.fabric
                  .listen({"b", 100},
                          [&](Endpoint ep) {
                            server_end = ep;
                            server_end.set_on_message(
                                [&](const std::string& m) {
                                  server_got = m;
                                  (void)server_end.send("pong");
                                });
                          })
                  .ok());
  Endpoint client;
  f.fabric.connect("a", {"b", 100}, [&](Result<Endpoint> ep) {
    ASSERT_TRUE(ep.ok());
    client = std::move(ep).value();
    client.set_on_message([&](const std::string& m) { client_got = m; });
    (void)client.send("ping");
  });
  f.engine.run();
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "pong");
  EXPECT_EQ(f.fabric.total_messages(), 2u);
}

TEST(Fabric, ConnectionRefusedWhenNobodyListens) {
  Fixture f;
  bool failed = false;
  f.fabric.connect("a", {"nowhere", 1}, [&](Result<Endpoint> ep) {
    ASSERT_FALSE(ep.ok());
    EXPECT_EQ(ep.error().kind(), ErrorKind::kConnectionRefused);
    failed = true;
  });
  f.engine.run();
  EXPECT_TRUE(failed);
}

TEST(Fabric, DoubleBindRejected) {
  Fixture f;
  ASSERT_TRUE(f.fabric.listen({"b", 1}, [](Endpoint) {}).ok());
  EXPECT_FALSE(f.fabric.listen({"b", 1}, [](Endpoint) {}).ok());
  f.fabric.unlisten({"b", 1});
  EXPECT_TRUE(f.fabric.listen({"b", 1}, [](Endpoint) {}).ok());
}

TEST(Fabric, GracefulCloseDeliversInFlightDataFirst) {
  Fixture f;
  std::vector<std::string> events;
  ASSERT_TRUE(f.fabric
                  .listen({"b", 1},
                          [&](Endpoint ep) {
                            static Endpoint held;
                            held = ep;
                            held.set_on_message([&](const std::string& m) {
                              events.push_back("msg:" + m);
                            });
                            held.set_on_close(
                                [&](const std::optional<Error>& e) {
                                  events.push_back(e.has_value() ? "broken"
                                                                 : "closed");
                                });
                          })
                  .ok());
  f.fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    ASSERT_TRUE(ep.ok());
    Endpoint client = std::move(ep).value();
    (void)client.send("last words");
    client.close();
  });
  f.engine.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "msg:last words");
  EXPECT_EQ(events[1], "closed");
}

TEST(Fabric, AbortDeliversEscapingErrorToBothSides) {
  // §3.2: "On a network connection, an escaping error is communicated by
  // breaking the connection."
  Fixture f;
  std::optional<Error> server_saw;
  ASSERT_TRUE(f.fabric
                  .listen({"b", 1},
                          [&](Endpoint ep) {
                            static Endpoint held;
                            held = ep;
                            held.set_on_close(
                                [&](const std::optional<Error>& e) {
                                  server_saw = e;
                                });
                          })
                  .ok());
  f.fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    ASSERT_TRUE(ep.ok());
    Endpoint client = std::move(ep).value();
    client.abort(Error(ErrorKind::kProtocolError, "peer spoke nonsense"));
  });
  f.engine.run();
  ASSERT_TRUE(server_saw.has_value());
  EXPECT_EQ(server_saw->kind(), ErrorKind::kProtocolError);
}

TEST(Fabric, SendOnClosedConnectionIsExplicitError) {
  Fixture f;
  ASSERT_TRUE(f.fabric.listen({"b", 1}, [](Endpoint) {}).ok());
  Endpoint client;
  f.fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    client = std::move(ep).value();
  });
  f.engine.run();
  client.close();
  Result<void> r = client.send("too late");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind(), ErrorKind::kConnectionLost);
}

TEST(Fabric, MessageDropBreaksConnection) {
  Fixture f;
  HostFaults faults;
  faults.drop_msg_prob = 1.0;
  f.fabric.set_host_faults("b", faults);
  std::optional<Error> client_saw;
  ASSERT_TRUE(f.fabric.listen({"b", 1}, [](Endpoint) {}).ok());
  f.fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    ASSERT_TRUE(ep.ok());
    static Endpoint client;
    client = std::move(ep).value();
    client.set_on_close(
        [&](const std::optional<Error>& e) { client_saw = e; });
    (void)client.send("doomed");
  });
  f.engine.run();
  ASSERT_TRUE(client_saw.has_value());
  EXPECT_EQ(client_saw->kind(), ErrorKind::kConnectionLost);
  ASSERT_NE(client_saw->label("injected"), nullptr);
}

TEST(Fabric, PartitionBlocksNewConnections) {
  Fixture f;
  ASSERT_TRUE(f.fabric.listen({"b", 1}, [](Endpoint) {}).ok());
  f.fabric.set_partitioned("b", true);
  bool failed = false;
  f.fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    ASSERT_FALSE(ep.ok());
    EXPECT_EQ(ep.error().kind(), ErrorKind::kHostUnreachable);
    failed = true;
  });
  f.engine.run();
  EXPECT_TRUE(failed);
  // Healing restores connectivity.
  f.fabric.set_partitioned("b", false);
  bool connected = false;
  f.fabric.connect("a", {"b", 1},
                   [&](Result<Endpoint> ep) { connected = ep.ok(); });
  f.engine.run();
  EXPECT_TRUE(connected);
}

TEST(Fabric, CrashHostBreaksConnectionsAndListeners) {
  Fixture f;
  std::optional<Error> peer_saw;
  ASSERT_TRUE(f.fabric.listen({"b", 1}, [](Endpoint) {}).ok());
  f.fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    static Endpoint client;
    client = std::move(ep).value();
    client.set_on_close([&](const std::optional<Error>& e) { peer_saw = e; });
  });
  f.engine.run();
  f.fabric.crash_host("b");
  ASSERT_TRUE(peer_saw.has_value());
  EXPECT_EQ(peer_saw->kind(), ErrorKind::kConnectionLost);
  // The listener died with the host.
  bool refused = false;
  f.fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    refused = !ep.ok();
  });
  f.engine.run();
  EXPECT_TRUE(refused);
}

TEST(Fabric, RefuseProbability) {
  Fixture f;
  HostFaults faults;
  faults.refuse_prob = 1.0;
  f.fabric.set_host_faults("b", faults);
  ASSERT_TRUE(f.fabric.listen({"b", 1}, [](Endpoint) {}).ok());
  bool refused = false;
  f.fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    refused = !ep.ok() &&
              ep.error().kind() == ErrorKind::kConnectionRefused;
  });
  f.engine.run();
  EXPECT_TRUE(refused);
}

TEST(Fabric, LatencyAdvancesClock) {
  Fixture f;
  HostFaults faults;
  faults.latency = SimTime::msec(5);
  faults.latency_jitter = SimTime::zero();
  f.fabric.set_default_faults(faults);
  ASSERT_TRUE(f.fabric.listen({"b", 1}, [](Endpoint) {}).ok());
  SimTime connected_at;
  f.fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    ASSERT_TRUE(ep.ok());
    connected_at = f.engine.now();
  });
  f.engine.run();
  EXPECT_GE(connected_at, SimTime::msec(5));
}

// ---- fault-injection edges (the chaos Injector's hook points) ----

TEST(Fabric, CrashRacesInFlightConnect) {
  // The SYN is in flight when the host dies. The decision is taken at
  // delivery time, so the dialer gets exactly one explicit refusal — not a
  // stale success against a listener that no longer exists, and not
  // silence.
  Fixture f;
  ASSERT_TRUE(f.fabric.listen({"b", 1}, [](Endpoint) {}).ok());
  int callbacks = 0;
  std::optional<Error> saw;
  f.fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    ++callbacks;
    if (!ep.ok()) saw = ep.error();
  });
  f.fabric.crash_host("b");  // connect attempt still in flight
  f.engine.run();
  EXPECT_EQ(callbacks, 1);
  ASSERT_TRUE(saw.has_value());
  EXPECT_EQ(saw->kind(), ErrorKind::kConnectionRefused);
}

TEST(Fabric, DoubleSetPartitionedBreaksExactlyOnce) {
  // Applying the same partition twice (as an overlapping fault plan might)
  // must not double-fire the escaping error: each side's on_close runs
  // exactly once, courtesy of the connection's broken latch.
  Fixture f;
  int server_closes = 0;
  int client_closes = 0;
  ASSERT_TRUE(f.fabric
                  .listen({"b", 1},
                          [&](Endpoint ep) {
                            static Endpoint held;
                            held = ep;
                            held.set_on_close(
                                [&](const std::optional<Error>&) {
                                  ++server_closes;
                                });
                          })
                  .ok());
  Endpoint client;
  f.fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    ASSERT_TRUE(ep.ok());
    client = std::move(ep).value();
    client.set_on_close(
        [&](const std::optional<Error>& e) {
          ++client_closes;
          ASSERT_TRUE(e.has_value());
          EXPECT_EQ(e->kind(), ErrorKind::kConnectionTimedOut);
        });
  });
  f.engine.run();
  (void)client.send("into the void");
  f.fabric.set_partitioned("b", true);
  f.fabric.set_partitioned("b", true);  // idempotent, not cumulative
  f.engine.run();
  EXPECT_EQ(client_closes, 1);
  EXPECT_EQ(server_closes, 1);
  // The broken connection stays broken: further sends are explicit
  // errors, with no second on_close.
  Result<void> r = client.send("again");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind(), ErrorKind::kConnectionLost);
  f.engine.run();
  EXPECT_EQ(client_closes, 1);
  EXPECT_EQ(server_closes, 1);
}

TEST(Fabric, PartitionThenHealAllowsRedial) {
  // A partition breaks the old connection exactly once; after healing, a
  // fresh dial reaches the same listener and traffic flows again — the
  // pattern every chaos partition/heal pair exercises at pool scale.
  Fixture f;
  int old_client_closes = 0;
  std::string server_got;
  ASSERT_TRUE(f.fabric
                  .listen({"b", 1},
                          [&](Endpoint ep) {
                            static Endpoint held;
                            held = ep;
                            held.set_on_message([&](const std::string& m) {
                              server_got = m;
                            });
                          })
                  .ok());
  Endpoint old_client;
  f.fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    ASSERT_TRUE(ep.ok());
    old_client = std::move(ep).value();
    old_client.set_on_close(
        [&](const std::optional<Error>& e) {
          ++old_client_closes;
          ASSERT_TRUE(e.has_value());
        });
  });
  f.engine.run();
  (void)old_client.send("lost to the partition");
  f.fabric.set_partitioned("b", true);
  f.engine.run();
  EXPECT_EQ(old_client_closes, 1);
  EXPECT_EQ(server_got, "");

  f.fabric.set_partitioned("b", false);
  bool redialed = false;
  f.fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    ASSERT_TRUE(ep.ok());
    redialed = true;
    Endpoint fresh = std::move(ep).value();
    (void)fresh.send("back in business");
  });
  f.engine.run();
  EXPECT_TRUE(redialed);
  EXPECT_EQ(server_got, "back in business");
  // Healing must not re-trigger the old connection's close.
  EXPECT_EQ(old_client_closes, 1);
}

}  // namespace
}  // namespace esg::net

namespace esg::net {
namespace {

TEST(Bandwidth, BulkTransferTakesProportionalTime) {
  sim::Engine engine{7};
  NetworkFabric fabric{engine};
  HostFaults faults;
  faults.latency = SimTime::msec(1);
  faults.latency_jitter = SimTime::zero();
  faults.bandwidth_bytes_per_sec = 1 << 20;  // 1 MiB/s
  fabric.set_default_faults(faults);

  SimTime delivered_at;
  ASSERT_TRUE(fabric
                  .listen({"b", 1},
                          [&](Endpoint ep) {
                            static Endpoint held;
                            held = ep;
                            held.set_on_message([&](const std::string&) {
                              delivered_at = engine.now();
                            });
                          })
                  .ok());
  fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    ASSERT_TRUE(ep.ok());
    Endpoint client = std::move(ep).value();
    (void)client.send(std::string(1 << 20, 'x'));  // 1 MiB
  });
  engine.run();
  // Roughly one second of transmission (plus small latencies).
  EXPECT_GE(delivered_at, SimTime::sec(1));
  EXPECT_LT(delivered_at, SimTime::sec_f(1.1));
}

TEST(Bandwidth, SmallMessagesAreCheap) {
  sim::Engine engine{7};
  NetworkFabric fabric{engine};
  HostFaults faults;
  faults.latency = SimTime::msec(1);
  faults.latency_jitter = SimTime::zero();
  faults.bandwidth_bytes_per_sec = 1 << 20;
  fabric.set_default_faults(faults);
  SimTime delivered_at;
  ASSERT_TRUE(fabric
                  .listen({"b", 1},
                          [&](Endpoint ep) {
                            static Endpoint held;
                            held = ep;
                            held.set_on_message([&](const std::string&) {
                              delivered_at = engine.now();
                            });
                          })
                  .ok());
  fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    Endpoint client = std::move(ep).value();
    (void)client.send("tiny");
  });
  engine.run();
  EXPECT_LT(delivered_at, SimTime::msec(10));
}

TEST(Bandwidth, QueuedTransfersSerialize) {
  sim::Engine engine{7};
  NetworkFabric fabric{engine};
  HostFaults faults;
  faults.latency = SimTime::msec(1);
  faults.latency_jitter = SimTime::zero();
  faults.bandwidth_bytes_per_sec = 1 << 20;
  fabric.set_default_faults(faults);
  std::vector<SimTime> deliveries;
  ASSERT_TRUE(fabric
                  .listen({"b", 1},
                          [&](Endpoint ep) {
                            static Endpoint held;
                            held = ep;
                            held.set_on_message([&](const std::string&) {
                              deliveries.push_back(engine.now());
                            });
                          })
                  .ok());
  fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    Endpoint client = std::move(ep).value();
    (void)client.send(std::string(512 << 10, 'x'));  // 0.5 MiB -> ~0.5s
    (void)client.send(std::string(512 << 10, 'y'));  // queues behind
  });
  engine.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_GE(deliveries[1] - deliveries[0], SimTime::msec(450));
  EXPECT_GE(deliveries[1], SimTime::sec(1));
}

TEST(Bandwidth, UnlimitedByDefault) {
  sim::Engine engine{7};
  NetworkFabric fabric{engine};
  SimTime delivered_at;
  ASSERT_TRUE(fabric
                  .listen({"b", 1},
                          [&](Endpoint ep) {
                            static Endpoint held;
                            held = ep;
                            held.set_on_message([&](const std::string&) {
                              delivered_at = engine.now();
                            });
                          })
                  .ok());
  fabric.connect("a", {"b", 1}, [&](Result<Endpoint> ep) {
    Endpoint client = std::move(ep).value();
    (void)client.send(std::string(64 << 20, 'x'));  // 64 MiB, instantaneous
  });
  engine.run();
  EXPECT_LT(delivered_at, SimTime::msec(10));
}

}  // namespace
}  // namespace esg::net
