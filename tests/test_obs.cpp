// Tests for the error-propagation flight recorder, its exporters, the
// runtime principle checker, and the per-scope dashboard aggregation layer
// (obs/aggregate.hpp, obs/dashboard.hpp).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/aggregate.hpp"
#include "obs/checker.hpp"
#include "obs/dashboard.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "pool/pool.hpp"
#include "pool/workload.hpp"
#include "sim/metrics.hpp"

namespace esg::obs {
namespace {

/// Every test drives its own recorder instance (the post-PR-3 discipline:
/// nothing here touches the process-wide compat shim), started enabled
/// with the default capacity.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rec_.set_capacity(8192);
    rec_.set_enabled(true);
  }

  /// A sink bound to this test's recorder.
  [[nodiscard]] TraceSink sink(std::string component) {
    return TraceSink(std::move(component), &rec_);
  }

  FlightRecorder rec_;
};

Error sample_error(ErrorKind kind = ErrorKind::kFileNotFound) {
  return Error(kind, "sample condition");
}

// ---- recorder core ----

TEST_F(ObsTest, DisabledRecorderCostsNothingAndRecordsNothing) {
  rec_.set_enabled(false);
  const TraceSink idle = sink("idle");
  EXPECT_EQ(idle.raised(sample_error()), 0u);
  EXPECT_EQ(idle.implicit(ErrorKind::kUnknown, ErrorScope::kProcess), 0u);
  EXPECT_EQ(rec_.size(), 0u);
  EXPECT_EQ(rec_.total_recorded(), 0u);
}

TEST_F(ObsTest, RingBufferWrapsKeepingNewestEvents) {
  rec_.set_capacity(8);
  const TraceSink ring = sink("ring");
  std::uint64_t last_id = 0;
  for (int i = 0; i < 20; ++i) {
    last_id = ring.raised(sample_error(), 0, "event " + std::to_string(i));
  }
  EXPECT_EQ(rec_.size(), 8u);
  EXPECT_EQ(rec_.total_recorded(), 20u);
  EXPECT_EQ(rec_.count(TraceEventType::kRaised), 20u);

  const std::vector<TraceEvent> events = rec_.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest first, and exactly the newest eight survive.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].id, events[i].id);
  }
  EXPECT_EQ(events.back().id, last_id);
  EXPECT_EQ(events.front().id, last_id - 7);
  EXPECT_EQ(events.back().detail, "event 19");

  // last(n) returns the n newest, still oldest first.
  const std::vector<TraceEvent> tail = rec_.last(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.front().id, last_id - 2);
  EXPECT_EQ(tail.back().id, last_id);
  // Asking for more than retained returns everything retained.
  EXPECT_EQ(rec_.last(100).size(), 8u);
}

TEST_F(ObsTest, ShrinkingCapacityDropsOldest) {
  const TraceSink shrink = sink("shrink");
  for (int i = 0; i < 10; ++i) shrink.raised(sample_error());
  rec_.set_capacity(4);
  const std::vector<TraceEvent> events = rec_.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().id, 7u);
  EXPECT_EQ(events.back().id, 10u);
}

TEST_F(ObsTest, RingWrapCountsDroppedSpansPerScope) {
  rec_.set_capacity(4);
  const TraceSink ring = sink("ring");
  // kFileNotFound raises with file scope; kOutOfMemory with virtual-machine.
  for (int i = 0; i < 6; ++i) ring.raised(sample_error());           // file
  for (int i = 0; i < 3; ++i) {
    ring.raised(Error(ErrorKind::kOutOfMemory, "heap"));  // virtual-machine
  }
  // 9 recorded, 4 retained -> 5 dropped: the oldest five, all file scope.
  EXPECT_EQ(rec_.total_recorded(), 9u);
  EXPECT_EQ(rec_.size(), 4u);
  EXPECT_EQ(rec_.dropped_spans(), 5u);
  EXPECT_EQ(rec_.dropped_spans(ErrorScope::kFile), 5u);
  EXPECT_EQ(rec_.dropped_spans(ErrorScope::kVirtualMachine), 0u);

  const std::map<ErrorScope, std::uint64_t> by_scope = rec_.dropped_by_scope();
  ASSERT_EQ(by_scope.size(), 1u);
  EXPECT_EQ(by_scope.at(ErrorScope::kFile), 5u);

  // A capacity shrink sheds retained events into the same accounting.
  rec_.set_capacity(2);
  EXPECT_EQ(rec_.dropped_spans(), 7u);

  // clear() resets the accounting with everything else.
  rec_.clear();
  EXPECT_EQ(rec_.dropped_spans(), 0u);
  EXPECT_TRUE(rec_.dropped_by_scope().empty());
}

TEST_F(ObsTest, TapSeesEveryEventEvenAfterRingWrap) {
  rec_.set_capacity(2);
  std::vector<std::uint64_t> tapped;
  rec_.set_tap([&](const TraceEvent& event) { tapped.push_back(event.id); });
  const TraceSink t = sink("tap");
  for (int i = 0; i < 10; ++i) t.raised(sample_error());
  // The ring retains 2 events; the tap saw all 10, ids already assigned.
  EXPECT_EQ(rec_.size(), 2u);
  ASSERT_EQ(tapped.size(), 10u);
  EXPECT_EQ(tapped.front(), 1u);
  EXPECT_EQ(tapped.back(), 10u);

  rec_.clear_tap();
  t.raised(sample_error());
  EXPECT_EQ(tapped.size(), 10u);
}

TEST_F(ObsTest, EventsChainCausallyPerJob) {
  const TraceSink chain_sink = sink("chain");
  const std::uint64_t a = chain_sink.raised(sample_error(), 7);
  const std::uint64_t b = chain_sink.routed(sample_error(), "schedd", 7);
  const std::uint64_t c = chain_sink.masked(sample_error(), 7, "retrying");
  // A different job's events must not interleave into job 7's chain.
  chain_sink.raised(sample_error(), 8);
  const std::uint64_t d = chain_sink.delivered(sample_error(), 7);

  const std::vector<TraceEvent> chain = rec_.chain(d);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0].id, a);
  EXPECT_EQ(chain[1].id, b);
  EXPECT_EQ(chain[2].id, c);
  EXPECT_EQ(chain[3].id, d);
  EXPECT_EQ(chain[1].parent, a);

  // A new raise for job 7 roots a fresh chain.
  const std::uint64_t e = chain_sink.raised(sample_error(), 7);
  EXPECT_EQ(rec_.find(e)->parent, 0u);
}

TEST_F(ObsTest, ExplicitParentOverridesAutoLinking) {
  const TraceSink s = sink("explicit");
  const std::uint64_t a = s.raised(sample_error(), 3);
  s.routed(sample_error(), "somewhere", 3);
  const std::uint64_t c = s.consumed(sample_error(), 3, "done", a);
  EXPECT_EQ(rec_.find(c)->parent, a);
}

TEST_F(ObsTest, ChronicFailureHookFiresAndMarks) {
  std::vector<std::string> reasons;
  rec_.set_on_chronic([&](const std::string& r) { reasons.push_back(r); });
  rec_.chronic_failure("machine bad0 looks like a black hole");
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], "machine bad0 looks like a black hole");
  ASSERT_EQ(rec_.chronic_marks().size(), 1u);
}

// ---- Chrome trace export ----

/// Minimal JSON validator: enough structure-checking to prove the export
/// is loadable (balanced containers, quoted strings, legal escapes, no
/// trailing garbage) without a JSON library in the repo.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(s_[pos_])) return false;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(s_[pos_]) || s_[pos_] == '.' || s_[pos_] == 'e' ||
            s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(s_[pos_])) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST_F(ObsTest, ChromeTraceIsWellFormedJson) {
  const TraceSink s = sink("exporter \"quoted\"\n");  // hostile component
  const std::uint64_t a =
      s.raised(sample_error().with_message("line1\nline2\t\"x\""), 5);
  s.routed(sample_error(), "schedd", 5, a);
  s.delivered(sample_error(), 5);
  const std::string json = to_chrome_trace(rec_);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  // The format chrome://tracing expects: a traceEvents array, instant
  // events, and flow arrows for the parent links.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceOfEmptyJournalIsValid) {
  const std::string json = to_chrome_trace(rec_);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
}

// ---- Prometheus export ----

TEST_F(ObsTest, PrometheusExportCountsAndMerges) {
  const TraceSink prom = sink("prom");
  prom.raised(sample_error());
  prom.raised(sample_error());
  prom.dropped(sample_error());

  sim::MetricsRegistry reg;
  reg.counter("jobs.completed").add(11);
  const std::string text = to_prometheus(rec_, reg.prometheus_str());
  EXPECT_NE(text.find("esg_trace_events_total{type=\"raised\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("esg_trace_events_total{type=\"dropped\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("esg_trace_retained_events 3"), std::string::npos);
  // The registry's own metrics ride along on the same page.
  EXPECT_NE(text.find("jobs_completed 11"), std::string::npos);
}

TEST_F(ObsTest, PrometheusExportSurfacesDroppedSpans) {
  rec_.set_capacity(1);
  const TraceSink prom = sink("prom");
  prom.raised(sample_error());  // file scope
  prom.raised(sample_error());  // evicts the first
  const std::string text = to_prometheus(rec_);
  EXPECT_NE(text.find("esg_trace_dropped_spans_total{scope=\"file\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("esg_trace_dropped_spans_total{scope=\"pool\"} 0"),
            std::string::npos);
}

// ---- human dump ----

TEST_F(ObsTest, DumpRendersReasonAndEvents) {
  const TraceSink dumper = sink("dumper");
  dumper.raised(sample_error(ErrorKind::kJvmMissing), 9, "exec failed");
  const std::string dump = render_dump(rec_.last(10), "chronic failure");
  EXPECT_NE(dump.find("chronic failure"), std::string::npos);
  EXPECT_NE(dump.find("jvm-missing"), std::string::npos);
  EXPECT_NE(dump.find("job=9"), std::string::npos);
}

// ---- journal save/load ----

TEST_F(ObsTest, JournalRoundTripsEventsAndDroppedCounts) {
  rec_.set_capacity(3);
  const TraceSink j = sink("journal@host1/sub");
  j.raised(sample_error(), 4, "plain");
  j.routed(sample_error(), "schedd", 4);
  // Hostile free-text: tabs, newlines, backslashes must survive the TSV.
  j.masked(sample_error(), 4, "tab\there\nnewline\\backslash");
  j.raised(Error(ErrorKind::kOutOfMemory, "heap"), 5);  // wraps: drops 1

  const std::string text = journal_str(rec_);
  EXPECT_NE(text.find("# esg-journal v1"), std::string::npos);
  EXPECT_NE(text.find("# dropped file 1"), std::string::npos);

  std::optional<Journal> parsed = parse_journal(text);
  ASSERT_TRUE(parsed.has_value());
  const std::vector<TraceEvent> original = rec_.events();
  ASSERT_EQ(parsed->events.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed->events[i].id, original[i].id);
    EXPECT_EQ(parsed->events[i].parent, original[i].parent);
    EXPECT_EQ(parsed->events[i].when, original[i].when);
    EXPECT_EQ(parsed->events[i].type, original[i].type);
    EXPECT_EQ(parsed->events[i].form, original[i].form);
    EXPECT_EQ(parsed->events[i].kind, original[i].kind);
    EXPECT_EQ(parsed->events[i].scope, original[i].scope);
    EXPECT_EQ(parsed->events[i].job, original[i].job);
    EXPECT_EQ(parsed->events[i].component, original[i].component);
    EXPECT_EQ(parsed->events[i].detail, original[i].detail);
  }
  ASSERT_EQ(parsed->dropped.size(), 1u);
  EXPECT_EQ(parsed->dropped.at(ErrorScope::kFile), 1u);

  // Round-trip fixpoint: serializing the parse reproduces the bytes.
  EXPECT_EQ(journal_str(parsed->events, parsed->dropped), text);
}

TEST_F(ObsTest, JournalParserRejectsGarbage) {
  EXPECT_FALSE(parse_journal("").has_value());
  EXPECT_FALSE(parse_journal("not a journal\n").has_value());
  const std::string header = "# esg-journal v1\n";
  EXPECT_TRUE(parse_journal(header).has_value());  // empty journal is fine
  // Wrong field count.
  EXPECT_FALSE(parse_journal(header + "1\t2\t3\n").has_value());
  // Unknown enum names.
  EXPECT_FALSE(
      parse_journal(header +
                    "5\t1\t0\texploded\texplicit\tfile-not-found\tfile\t0"
                    "\tc\td\n")
          .has_value());
  EXPECT_FALSE(
      parse_journal(header +
                    "5\t1\t0\traised\texplicit\tnot-a-kind\tfile\t0\tc\td\n")
          .has_value());
  // Non-numeric id.
  EXPECT_FALSE(
      parse_journal(header +
                    "5\tx\t0\traised\texplicit\tfile-not-found\tfile\t0"
                    "\tc\td\n")
          .has_value());
  // Bad dropped header.
  EXPECT_FALSE(parse_journal(header + "# dropped nowhere 3\n").has_value());
  // A valid line parses.
  std::optional<Journal> ok = parse_journal(
      header + "5\t1\t0\traised\texplicit\tfile-not-found\tfile\t9\tc\td\n");
  ASSERT_TRUE(ok.has_value());
  ASSERT_EQ(ok->events.size(), 1u);
  EXPECT_EQ(ok->events[0].job, 9u);
}

TEST_F(ObsTest, JournalPrefixParserToleratesTornTrailingLine) {
  // esg-top --follow reads files another process is appending to: a write
  // caught mid-line must not fail the whole parse, only wait for the rest.
  const std::string header = "# esg-journal v1\n";
  const std::string line =
      "5\t1\t0\traised\texplicit\tfile-not-found\tfile\t9\tc\td\n";

  std::size_t consumed = 0;
  std::optional<Journal> parsed =
      parse_journal_prefix(header + line + "17\t2\t1\tcons", &consumed);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->events.size(), 1u);
  EXPECT_EQ(consumed, header.size() + line.size());

  // The torn tail, once completed, parses on the next read.
  parsed = parse_journal_prefix(
      header + line +
          "17\t2\t1\tconsumed\texplicit\tfile-not-found\tfile\t9\tc\td\n",
      &consumed);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->events.size(), 2u);

  // Still strict about complete lines: garbage before a newline fails.
  EXPECT_FALSE(parse_journal_prefix(header + "garbage\tline\n").has_value());
  // A file with no complete header yet is "not ready", not "ok and empty".
  EXPECT_FALSE(parse_journal_prefix("# esg-jour").has_value());
}

// ---- flow aggregation ----

TEST_F(ObsTest, DispositionMappingCoversEveryEventType) {
  EXPECT_EQ(flow_disposition(TraceEventType::kRaised),
            FlowDisposition::kRaised);
  EXPECT_EQ(flow_disposition(TraceEventType::kConverted),
            FlowDisposition::kPropagated);
  EXPECT_EQ(flow_disposition(TraceEventType::kEscalated),
            FlowDisposition::kPropagated);
  EXPECT_EQ(flow_disposition(TraceEventType::kRouted),
            FlowDisposition::kPropagated);
  EXPECT_EQ(flow_disposition(TraceEventType::kConsumed),
            FlowDisposition::kConsumed);
  EXPECT_EQ(flow_disposition(TraceEventType::kDelivered),
            FlowDisposition::kConsumed);
  EXPECT_EQ(flow_disposition(TraceEventType::kMasked),
            FlowDisposition::kMasked);
  EXPECT_EQ(flow_disposition(TraceEventType::kDropped),
            FlowDisposition::kEscaped);
  EXPECT_EQ(flow_disposition(TraceEventType::kImplicit),
            FlowDisposition::kEscaped);
}

TEST_F(ObsTest, MachineAttributionFollowsComponentConvention) {
  EXPECT_EQ(machine_of("starter@bad0"), "bad0");
  EXPECT_EQ(machine_of("shadow@submit0/job3"), "submit0");
  EXPECT_EQ(machine_of("jvm@good1"), "good1");
  EXPECT_EQ(machine_of("submit0"), "submit0");  // bare daemon host name
  EXPECT_EQ(machine_of("central"), "central");
  EXPECT_EQ(machine_of(""), "-");
  EXPECT_EQ(machine_of("weird@"), "-");
  EXPECT_EQ(machine_of("a@b@c"), "c");  // last '@' wins
}

TEST_F(ObsTest, AggregateBucketsBySliceAndCountsByKey) {
  FlowAggregate agg;
  agg.slice_usec = SimTime::minutes(1).as_usec();

  TraceEvent event;
  event.type = TraceEventType::kRaised;
  event.kind = ErrorKind::kJvmMisconfigured;
  event.scope = ErrorScope::kRemoteResource;
  event.component = "jvm@bad0";
  event.when = SimTime::sec(10);
  agg.add(event);
  event.when = SimTime::sec(70);  // second slice
  agg.add(event);
  event.type = TraceEventType::kMasked;
  event.component = "submit0";
  event.when = SimTime::sec(75);
  agg.add(event);

  EXPECT_EQ(agg.events_seen, 3u);
  EXPECT_EQ(agg.first_event, SimTime::sec(10));
  EXPECT_EQ(agg.last_event, SimTime::sec(75));
  EXPECT_EQ(agg.count(FlowDisposition::kRaised), 2u);
  EXPECT_EQ(agg.count(ErrorScope::kRemoteResource, FlowDisposition::kRaised),
            2u);
  EXPECT_EQ(agg.count(ErrorScope::kRemoteResource, FlowDisposition::kMasked),
            1u);
  EXPECT_EQ(agg.machine_count("bad0", FlowDisposition::kRaised), 2u);
  EXPECT_EQ(agg.machine_count("submit0", FlowDisposition::kMasked), 1u);
  EXPECT_EQ(agg.machines(), (std::vector<std::string>{"bad0", "submit0"}));
  EXPECT_EQ(agg.scopes(),
            (std::vector<ErrorScope>{ErrorScope::kRemoteResource}));

  // Slice bucketing: raised events landed in slices 0 and 1.
  FlowKey key{ErrorScope::kRemoteResource, "bad0",
              ErrorKind::kJvmMisconfigured, FlowDisposition::kRaised};
  const FlowSeries& series = agg.cells.at(key);
  EXPECT_EQ(series.total, 2u);
  ASSERT_EQ(series.slices.size(), 2u);
  EXPECT_EQ(series.slices.at(0), 1u);
  EXPECT_EQ(series.slices.at(1), 1u);
}

TEST_F(ObsTest, AggregateMergeSumsCellsAndWidensTimeRange) {
  TraceEvent event;
  event.type = TraceEventType::kRaised;
  event.kind = ErrorKind::kDiskFull;
  event.scope = ErrorScope::kFile;
  event.component = "fs@a";

  FlowAggregate left;
  event.when = SimTime::sec(100);
  left.add(event);
  left.dropped_spans[ErrorScope::kFile] = 2;

  FlowAggregate right;
  event.when = SimTime::sec(5);
  right.add(event);
  event.when = SimTime::sec(500);
  right.add(event);
  right.dropped_spans[ErrorScope::kFile] = 1;
  right.dropped_spans[ErrorScope::kPool] = 4;

  FlowAggregate merged;
  merged.merge(left);
  merged.merge(right);
  EXPECT_EQ(merged.events_seen, 3u);
  EXPECT_EQ(merged.first_event, SimTime::sec(5));
  EXPECT_EQ(merged.last_event, SimTime::sec(500));
  EXPECT_EQ(merged.count(FlowDisposition::kRaised), 3u);
  EXPECT_EQ(merged.dropped_spans.at(ErrorScope::kFile), 3u);
  EXPECT_EQ(merged.dropped_spans.at(ErrorScope::kPool), 4u);
  EXPECT_EQ(merged.dropped_total(), 7u);

  // Merging is order-insensitive for the totals and the dump.
  FlowAggregate reversed;
  reversed.merge(right);
  reversed.merge(left);
  EXPECT_EQ(dashboard_json(merged, "m"), dashboard_json(reversed, "m"));
}

TEST_F(ObsTest, ScopeAggregatorTapFoldsRecorderDroppedSpans) {
  rec_.set_capacity(2);
  ScopeAggregator aggregator(SimTime::minutes(1));
  aggregator.attach(rec_);
  const TraceSink t = sink("agg@host9");
  for (int i = 0; i < 5; ++i) t.raised(sample_error(), 1);

  const FlowAggregate snapshot = aggregator.snapshot();
  // The tap saw all five events even though the ring retains two...
  EXPECT_EQ(snapshot.events_seen, 5u);
  EXPECT_EQ(snapshot.count(FlowDisposition::kRaised), 5u);
  // ...and the snapshot carries the ring's loss accounting for post-hoc
  // consumers of events().
  EXPECT_EQ(snapshot.dropped_spans.at(ErrorScope::kFile), 3u);

  aggregator.detach();
  t.raised(sample_error(), 1);
  EXPECT_EQ(aggregator.aggregate().events_seen, 5u);
}

// ---- dashboard renderings ----

FlowAggregate sample_aggregate() {
  FlowAggregate agg;
  TraceEvent event;
  event.kind = ErrorKind::kJvmMisconfigured;
  event.scope = ErrorScope::kRemoteResource;
  event.component = "jvm@bad0";
  event.when = SimTime::sec(30);
  event.type = TraceEventType::kRaised;
  agg.add(event);
  event.type = TraceEventType::kMasked;
  event.component = "submit0";
  event.when = SimTime::sec(90);
  agg.add(event);
  agg.dropped_spans[ErrorScope::kFile] = 2;
  return agg;
}

TEST_F(ObsTest, DashboardTableShowsScopesMachinesAndDrops) {
  const std::string table =
      render_dashboard(sample_aggregate(), {.title = "unit", .color = false});
  EXPECT_NE(table.find("esg-top — unit"), std::string::npos);
  EXPECT_NE(table.find("remote-resource"), std::string::npos);
  EXPECT_NE(table.find("bad0"), std::string::npos);
  EXPECT_NE(table.find("submit0"), std::string::npos);
  EXPECT_NE(table.find("jvm-misconfigured"), std::string::npos);
  EXPECT_NE(table.find("ring dropped 2 spans"), std::string::npos);
  // Color off: no escape sequences anywhere.
  EXPECT_EQ(table.find('\x1b'), std::string::npos);
}

TEST_F(ObsTest, DashboardJsonIsValidAndDeterministic) {
  const std::string a = dashboard_json(sample_aggregate(), "label \"x\"");
  const std::string b = dashboard_json(sample_aggregate(), "label \"x\"");
  EXPECT_EQ(a, b);
  EXPECT_TRUE(JsonValidator(a).valid()) << a;
  EXPECT_NE(a.find("\"events_seen\":2"), std::string::npos);
  EXPECT_NE(a.find("\"dropped_spans\":{\"file\":2}"), std::string::npos);
  EXPECT_NE(a.find("\"disposition\":\"masked\""), std::string::npos);

  // The empty aggregate serializes validly too.
  const std::string empty = dashboard_json(FlowAggregate{}, "");
  EXPECT_TRUE(JsonValidator(empty).valid()) << empty;
}

TEST_F(ObsTest, FlowPrometheusLabelsEveryKeyDimension) {
  const std::string text = flow_prometheus(sample_aggregate());
  EXPECT_NE(
      text.find("esg_error_flow_total{scope=\"remote-resource\","
                "machine=\"bad0\",kind=\"jvm-misconfigured\","
                "disposition=\"raised\"} 1"),
      std::string::npos);
  EXPECT_NE(text.find("esg_error_flow_dropped_spans_total{scope=\"file\"} 2"),
            std::string::npos);
}

TEST_F(ObsTest, RegisterFlowMetricsFeedsMetricsRegistry) {
  sim::MetricsRegistry metrics;
  register_flow_metrics(sample_aggregate(), metrics);
  EXPECT_EQ(metrics.counter_value("trace.flow.raised"), 1);
  EXPECT_EQ(metrics.counter_value("trace.flow.masked"), 1);
  EXPECT_EQ(metrics.counter_value("trace.flow.remote-resource.raised"), 1);
  EXPECT_EQ(metrics.counter_value("trace.flow.dropped_spans"), 2);
  // prometheus_str() carries the flow counters on the shared page.
  const std::string page = metrics.prometheus_str();
  EXPECT_NE(page.find("trace_flow_raised 1"), std::string::npos);
  EXPECT_NE(page.find("trace_flow_remote_resource_raised 1"),
            std::string::npos);

  // Re-registering a newer snapshot replaces, not accumulates.
  FlowAggregate again = sample_aggregate();
  TraceEvent extra;
  extra.type = TraceEventType::kRaised;
  extra.kind = ErrorKind::kJvmMisconfigured;
  extra.scope = ErrorScope::kRemoteResource;
  extra.component = "jvm@bad0";
  extra.when = SimTime::sec(31);
  again.add(extra);
  register_flow_metrics(again, metrics);
  EXPECT_EQ(metrics.counter_value("trace.flow.raised"), 2);
}

// ---- principle checker ----

TEST_F(ObsTest, SeededP1ViolationIsCaughtWithChain) {
  // A daemon that receives a perfectly explicit error and turns it into an
  // implicit crash — the exact failure mode Principle 1 forbids.
  const TraceSink s = sink("bad-daemon");
  const Error explicit_error = sample_error(ErrorKind::kJvmMissing);
  const std::uint64_t raise = s.raised(explicit_error, 4);
  const std::uint64_t route = s.routed(explicit_error, "bad-daemon", 4);
  s.implicit(ErrorKind::kJvmMissing, ErrorScope::kRemoteResource, 4,
             "mapped to silent exit", route);

  const CheckReport report = PrincipleChecker().check(rec_);
  ASSERT_FALSE(report.ok());
  const Violation* p1 = nullptr;
  for (const Violation& v : report.violations) {
    if (v.principle == Principle::kP1) p1 = &v;
  }
  ASSERT_NE(p1, nullptr) << report.str();
  // The offending causal span chain: raise -> route -> implicit collapse.
  ASSERT_EQ(p1->chain.size(), 3u);
  EXPECT_EQ(p1->chain[0].id, raise);
  EXPECT_EQ(p1->chain[1].id, route);
  EXPECT_EQ(p1->chain[2].form, ErrorForm::kImplicit);
  EXPECT_NE(p1->message.find("bad-daemon"), std::string::npos);
}

TEST_F(ObsTest, UncaughtEscapingErrorViolatesP2) {
  const TraceSink thrower = sink("thrower");
  Error e = sample_error(ErrorKind::kDiskFull);
  thrower.converted_to_escaping(e, 2, "thrown and never caught");
  const CheckReport report = PrincipleChecker().check(rec_);
  ASSERT_EQ(report.violations.size(), 1u) << report.str();
  EXPECT_EQ(report.violations[0].principle, Principle::kP2);
}

TEST_F(ObsTest, CaughtEscapingErrorSatisfiesP2) {
  const TraceSink thrower = sink("thrower");
  Error e = sample_error(ErrorKind::kDiskFull);
  thrower.converted_to_escaping(e, 2, "thrown");
  thrower.converted_to_explicit(e, 2, "caught one level up");
  thrower.consumed(e, 2);
  const CheckReport report = PrincipleChecker().check(rec_);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST_F(ObsTest, DroppedErrorViolatesP3) {
  const TraceSink leaky = sink("leaky");
  const std::uint64_t raise = leaky.raised(sample_error(), 6);
  leaky.dropped(sample_error(), 6, "nobody manages this scope");
  const CheckReport report = PrincipleChecker().check(rec_);
  ASSERT_EQ(report.violations.size(), 1u) << report.str();
  EXPECT_EQ(report.violations[0].principle, Principle::kP3);
  ASSERT_EQ(report.violations[0].chain.size(), 2u);
  EXPECT_EQ(report.violations[0].chain[0].id, raise);
}

TEST_F(ObsTest, DeliveringUnknownViolatesP4) {
  const TraceSink vague = sink("vague");
  vague.delivered(Error(ErrorKind::kUnknown, "something went wrong"), 1);
  const CheckReport report = PrincipleChecker().check(rec_);
  ASSERT_EQ(report.violations.size(), 1u) << report.str();
  EXPECT_EQ(report.violations[0].principle, Principle::kP4);
}

TEST_F(ObsTest, StrictModeWarnsOnOpenChains) {
  const TraceSink open = sink("open");
  open.raised(sample_error(), 1);  // never consumed, masked, or delivered
  const CheckReport lax = PrincipleChecker().check(rec_);
  EXPECT_TRUE(lax.ok());
  EXPECT_TRUE(lax.warnings.empty());

  PrincipleChecker::Options options;
  options.strict_p3 = true;
  const CheckReport strict = PrincipleChecker(options).check(rec_);
  EXPECT_TRUE(strict.ok());  // warnings, not violations
  EXPECT_EQ(strict.warnings.size(), 1u);
}

// ---- end-to-end: instrumented grid workloads ----

TEST_F(ObsTest, ScopedBlackHolePoolPassesAllPrincipleChecks) {
  // The flagship scenario: a black-hole machine in a scoped-discipline
  // pool. With the redesign's mechanisms in place the journal must show a
  // principled journey for every error — no violations.
  daemons::DisciplineConfig discipline = daemons::DisciplineConfig::scoped();
  discipline.schedd_avoidance = true;

  pool::PoolConfig config;
  config.seed = 11;
  config.discipline = discipline;
  config.machines.push_back(pool::MachineSpec::misconfigured_java("bad0"));
  config.machines.push_back(pool::MachineSpec::good("good0"));
  config.machines.push_back(pool::MachineSpec::good("good1"));

  config.trace = true;

  pool::Pool pool(config);
  std::vector<std::string> chronic;
  pool.recorder().set_on_chronic(
      [&](const std::string& reason) { chronic.push_back(reason); });
  Rng rng(3);
  pool::WorkloadOptions options;
  options.count = 12;
  options.mean_compute = SimTime::sec(5);
  for (auto& job : pool::make_workload(options, rng)) {
    pool.submit(std::move(job));
  }
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(6)));

  FlightRecorder& rec = pool.recorder();
  EXPECT_GT(rec.total_recorded(), 0u);
  // The black hole produced raises at the starter and maskings (retries)
  // at the schedd.
  EXPECT_GT(rec.count(TraceEventType::kRaised), 0u);
  EXPECT_GT(rec.count(TraceEventType::kMasked), 0u);

  const CheckReport report = PrincipleChecker().check(rec);
  EXPECT_TRUE(report.ok()) << report.str();

  // Avoidance kicked in: the chronic-failure hook saw bad0.
  ASSERT_FALSE(chronic.empty());
  EXPECT_NE(chronic[0].find("bad0"), std::string::npos);

  // And the journal exports cleanly.
  EXPECT_TRUE(JsonValidator(to_chrome_trace(rec)).valid());

  // The pool's live flow aggregate agrees with the recorder's lifetime
  // counters and attributes raises to the black hole.
  const FlowAggregate flow = pool.report().flow;
  EXPECT_EQ(flow.events_seen, rec.total_recorded());
  EXPECT_EQ(flow.count(FlowDisposition::kRaised),
            rec.count(TraceEventType::kRaised));
  EXPECT_EQ(flow.count(FlowDisposition::kMasked),
            rec.count(TraceEventType::kMasked));
  EXPECT_GT(flow.machine_count("bad0", FlowDisposition::kRaised), 0u);
}

TEST_F(ObsTest, NaiveDisciplineProducesP1ViolationEndToEnd) {
  // The §2.3 pathology, observed live: under the naive discipline the
  // starter launders a missing JVM into "exit code 1". The checker must
  // see the explicit error become implicit.
  pool::PoolConfig config;
  config.seed = 13;
  config.discipline = daemons::DisciplineConfig::naive();
  pool::MachineSpec liar;
  liar.name = "bad0";
  liar.startd.owner_asserts_java = true;
  liar.startd.jvm.installed = false;  // exec fails outright
  config.machines.push_back(std::move(liar));
  config.trace = true;

  pool::Pool pool(config);
  pool.submit(pool::make_hello_job());
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(2)));

  const CheckReport report = PrincipleChecker().check(pool.recorder());
  bool found_p1 = false;
  for (const Violation& v : report.violations) {
    if (v.principle == Principle::kP1 &&
        v.message.find("jvm-missing") != std::string::npos) {
      found_p1 = true;
      EXPECT_GE(v.chain.size(), 2u);
    }
  }
  EXPECT_TRUE(found_p1) << report.str();
}

// ---- sparklines ----

TEST(Sparkline, EmptySeriesRendersNothing) {
  // No slices observed (or zero width): no glyphs, so a dashboard row
  // without history stays clean.
  EXPECT_EQ(sparkline(FlowSeries{}, 8), "");
  FlowSeries series;
  series.slices[0] = 3;
  EXPECT_EQ(sparkline(series, 0), "");
}

TEST(Sparkline, SingleSliceFillsItsBucketAtFullHeight) {
  FlowSeries series;
  series.total = 5;
  series.slices[3] = 5;
  const std::string line = sparkline(series, 4);
  // One slice maps to the first bucket at the tallest glyph; the rest
  // stay blank. UTF-8 block glyphs are 3 bytes each.
  EXPECT_EQ(line.substr(0, 3), "\xe2\x96\x88");
  EXPECT_EQ(line.substr(3), "   ");
}

TEST(Sparkline, ScalesAgainstTheFullestBucket) {
  FlowSeries series;
  series.slices[0] = 8;
  series.slices[1] = 4;
  series.slices[2] = 1;
  series.total = 13;
  const std::string line = sparkline(series, 3);
  // Three slices, three buckets: full / half / lowest-nonzero. A nonzero
  // bucket never rounds down to blank (ceiling scale).
  EXPECT_EQ(line, "\xe2\x96\x88\xe2\x96\x84\xe2\x96\x81");
}

TEST(Sparkline, IsDeterministicForEqualSeries) {
  FlowSeries a;
  a.slices[2] = 3;
  a.slices[7] = 9;
  a.total = 12;
  FlowSeries b = a;
  EXPECT_EQ(sparkline(a), sparkline(b));
  EXPECT_EQ(sparkline(a, 10), sparkline(b, 10));
}

TEST(Sparkline, DashboardRowsCarrySparklinesWhenEnabled) {
  FlowAggregate aggregate;
  FlowKey key;
  key.kind = ErrorKind::kConnectionLost;
  key.disposition = FlowDisposition::kConsumed;
  aggregate.cells[key].total = 4;
  aggregate.cells[key].slices[0] = 4;
  DashboardOptions with;
  with.sparklines = true;
  DashboardOptions without;
  without.sparklines = false;
  const std::string on = render_dashboard(aggregate, with);
  const std::string off = render_dashboard(aggregate, without);
  EXPECT_NE(on, off);
  EXPECT_NE(on.find("\xe2\x96\x88"), std::string::npos);
  EXPECT_EQ(off.find("\xe2\x96\x88"), std::string::npos);
}

// ---- golden dashboards ----

/// Compare a rendered dashboard against a committed golden file. Bless new
/// output with:  ESG_BLESS=1 ./tests/test_obs --gtest_filter='*Golden*'
void expect_matches_golden(const std::string& rendered,
                           const std::string& name) {
  const std::string path =
      std::string(ESG_SOURCE_DIR) + "/tests/golden/" + name;
  if (std::getenv("ESG_BLESS") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot bless " << path;
    out << rendered;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with ESG_BLESS=1 to create)";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(rendered, buf.str())
      << "dashboard drifted from " << path
      << "; if intentional, re-bless with ESG_BLESS=1";
}

pool::PoolConfig golden_pool_config(bool scoped) {
  pool::PoolConfig config;
  config.seed = 7;
  config.discipline = scoped ? daemons::DisciplineConfig::scoped()
                             : daemons::DisciplineConfig::naive();
  config.trace = true;
  config.machines.push_back(pool::MachineSpec::misconfigured_java("bad0"));
  config.machines.push_back(pool::MachineSpec::good("good0"));
  config.machines.push_back(pool::MachineSpec::good("good1"));
  return config;
}

void run_golden_workload(pool::Pool& pool) {
  Rng rng(7);
  pool::WorkloadOptions options;
  options.count = 10;
  options.mean_compute = SimTime::sec(10);
  options.program_error_fraction = 0.3;
  for (auto& job : pool::make_workload(options, rng)) {
    pool.submit(std::move(job));
  }
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(6)));
}

TEST_F(ObsTest, GoldenDashboardScopedPool) {
  pool::Pool pool(golden_pool_config(/*scoped=*/true));
  run_golden_workload(pool);
  const pool::PoolReport report = pool.report();
  expect_matches_golden(report.dashboard_json("scoped"),
                        "dashboard_scoped.json");
  expect_matches_golden(report.dashboard_str("scoped"),
                        "dashboard_scoped.txt");
  const std::string prom = flow_prometheus(report.flow);
  expect_matches_golden(prom, "dashboard_scoped.prom");
}

TEST_F(ObsTest, PoolPrometheusPageCarriesFlowCounters) {
  pool::Pool pool(golden_pool_config(/*scoped=*/true));
  run_golden_workload(pool);
  // One page: the pool's own registry (seeded here with a harness counter)
  // plus the trace exporter plus the live per-scope flow counters.
  pool.metrics().counter("experiment.jobs").add(10);
  const std::string page = pool.prometheus_str();
  EXPECT_NE(page.find("experiment_jobs 10"), std::string::npos) << page;
  EXPECT_NE(page.find("esg_trace_events_total"), std::string::npos) << page;
  EXPECT_NE(page.find("trace_flow_raised"), std::string::npos) << page;
  EXPECT_NE(page.find("trace_flow_masked"), std::string::npos) << page;
  // Calling it again replaces the flow counters rather than accumulating.
  EXPECT_EQ(page, pool.prometheus_str());
}

TEST_F(ObsTest, GoldenDashboardNaivePool) {
  pool::Pool pool(golden_pool_config(/*scoped=*/false));
  run_golden_workload(pool);
  const pool::PoolReport report = pool.report();
  expect_matches_golden(report.dashboard_json("naive"),
                        "dashboard_naive.json");
  expect_matches_golden(report.dashboard_str("naive"), "dashboard_naive.txt");
}

TEST_F(ObsTest, NaiveAndScopedDashboardsDiverge) {
  // The acceptance check from the dashboards issue: the same workload
  // renders visibly different per-scope flow under the two disciplines —
  // the naive pool leaks (escaped/implicit), the scoped pool consumes and
  // masks inside the structure.
  pool::Pool naive(golden_pool_config(/*scoped=*/false));
  run_golden_workload(naive);
  pool::Pool scoped(golden_pool_config(/*scoped=*/true));
  run_golden_workload(scoped);

  const FlowAggregate nf = naive.report().flow;
  const FlowAggregate sf = scoped.report().flow;
  EXPECT_NE(dashboard_json(nf, "x"), dashboard_json(sf, "x"));
  // Scoped propagates and masks far more than naive (explicit routing and
  // reschedules); naive leaks escapes that scoped does not.
  EXPECT_GT(sf.count(FlowDisposition::kMasked),
            nf.count(FlowDisposition::kMasked));
  EXPECT_GT(sf.count(FlowDisposition::kConsumed) +
                sf.count(FlowDisposition::kPropagated),
            nf.count(FlowDisposition::kConsumed) +
                nf.count(FlowDisposition::kPropagated));
  EXPECT_GT(nf.count(FlowDisposition::kEscaped), 0u);
}

}  // namespace
}  // namespace esg::obs
