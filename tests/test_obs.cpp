// Tests for the error-propagation flight recorder, its exporters, and the
// runtime principle checker.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/checker.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "pool/pool.hpp"
#include "pool/workload.hpp"
#include "sim/metrics.hpp"

namespace esg::obs {
namespace {

/// Every test drives the process-wide recorder: start enabled and empty,
/// leave it disabled and empty so unrelated tests see the zero-cost path.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder& rec = FlightRecorder::global();
    rec.clear();
    rec.set_capacity(8192);
    rec.set_enabled(true);
  }
  void TearDown() override {
    FlightRecorder& rec = FlightRecorder::global();
    rec.set_enabled(false);
    rec.set_on_chronic(nullptr);
    rec.clear_clock();
    rec.clear();
  }
};

Error sample_error(ErrorKind kind = ErrorKind::kFileNotFound) {
  return Error(kind, "sample condition");
}

// ---- recorder core ----

TEST_F(ObsTest, DisabledRecorderCostsNothingAndRecordsNothing) {
  FlightRecorder& rec = FlightRecorder::global();
  rec.set_enabled(false);
  const TraceSink sink("idle");
  EXPECT_EQ(sink.raised(sample_error()), 0u);
  EXPECT_EQ(sink.implicit(ErrorKind::kUnknown, ErrorScope::kProcess), 0u);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
}

TEST_F(ObsTest, RingBufferWrapsKeepingNewestEvents) {
  FlightRecorder& rec = FlightRecorder::global();
  rec.set_capacity(8);
  const TraceSink sink("ring");
  std::uint64_t last_id = 0;
  for (int i = 0; i < 20; ++i) {
    last_id = sink.raised(sample_error(), 0, "event " + std::to_string(i));
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.total_recorded(), 20u);
  EXPECT_EQ(rec.count(TraceEventType::kRaised), 20u);

  const std::vector<TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest first, and exactly the newest eight survive.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].id, events[i].id);
  }
  EXPECT_EQ(events.back().id, last_id);
  EXPECT_EQ(events.front().id, last_id - 7);
  EXPECT_EQ(events.back().detail, "event 19");

  // last(n) returns the n newest, still oldest first.
  const std::vector<TraceEvent> tail = rec.last(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.front().id, last_id - 2);
  EXPECT_EQ(tail.back().id, last_id);
  // Asking for more than retained returns everything retained.
  EXPECT_EQ(rec.last(100).size(), 8u);
}

TEST_F(ObsTest, ShrinkingCapacityDropsOldest) {
  FlightRecorder& rec = FlightRecorder::global();
  const TraceSink sink("shrink");
  for (int i = 0; i < 10; ++i) sink.raised(sample_error());
  rec.set_capacity(4);
  const std::vector<TraceEvent> events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().id, 7u);
  EXPECT_EQ(events.back().id, 10u);
}

TEST_F(ObsTest, EventsChainCausallyPerJob) {
  const TraceSink sink("chain");
  const std::uint64_t a = sink.raised(sample_error(), 7);
  const std::uint64_t b = sink.routed(sample_error(), "schedd", 7);
  const std::uint64_t c = sink.masked(sample_error(), 7, "retrying");
  // A different job's events must not interleave into job 7's chain.
  sink.raised(sample_error(), 8);
  const std::uint64_t d = sink.delivered(sample_error(), 7);

  FlightRecorder& rec = FlightRecorder::global();
  const std::vector<TraceEvent> chain = rec.chain(d);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0].id, a);
  EXPECT_EQ(chain[1].id, b);
  EXPECT_EQ(chain[2].id, c);
  EXPECT_EQ(chain[3].id, d);
  EXPECT_EQ(chain[1].parent, a);

  // A new raise for job 7 roots a fresh chain.
  const std::uint64_t e = sink.raised(sample_error(), 7);
  EXPECT_EQ(rec.find(e)->parent, 0u);
}

TEST_F(ObsTest, ExplicitParentOverridesAutoLinking) {
  const TraceSink sink("explicit");
  const std::uint64_t a = sink.raised(sample_error(), 3);
  sink.routed(sample_error(), "somewhere", 3);
  const std::uint64_t c = sink.consumed(sample_error(), 3, "done", a);
  EXPECT_EQ(FlightRecorder::global().find(c)->parent, a);
}

TEST_F(ObsTest, ChronicFailureHookFiresAndMarks) {
  FlightRecorder& rec = FlightRecorder::global();
  std::vector<std::string> reasons;
  rec.set_on_chronic([&](const std::string& r) { reasons.push_back(r); });
  rec.chronic_failure("machine bad0 looks like a black hole");
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], "machine bad0 looks like a black hole");
  ASSERT_EQ(rec.chronic_marks().size(), 1u);
}

// ---- Chrome trace export ----

/// Minimal JSON validator: enough structure-checking to prove the export
/// is loadable (balanced containers, quoted strings, legal escapes, no
/// trailing garbage) without a JSON library in the repo.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(s_[pos_])) return false;
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(s_[pos_]) || s_[pos_] == '.' || s_[pos_] == 'e' ||
            s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const std::string& word) {
    if (s_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(s_[pos_])) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST_F(ObsTest, ChromeTraceIsWellFormedJson) {
  const TraceSink sink("exporter \"quoted\"\n");  // hostile component name
  const std::uint64_t a =
      sink.raised(sample_error().with_message("line1\nline2\t\"x\""), 5);
  sink.routed(sample_error(), "schedd", 5, a);
  sink.delivered(sample_error(), 5);
  const std::string json = to_chrome_trace(FlightRecorder::global());
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  // The format chrome://tracing expects: a traceEvents array, instant
  // events, and flow arrows for the parent links.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST_F(ObsTest, ChromeTraceOfEmptyJournalIsValid) {
  const std::string json = to_chrome_trace(FlightRecorder::global());
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
}

// ---- Prometheus export ----

TEST_F(ObsTest, PrometheusExportCountsAndMerges) {
  const TraceSink sink("prom");
  sink.raised(sample_error());
  sink.raised(sample_error());
  sink.dropped(sample_error());

  sim::MetricsRegistry reg;
  reg.counter("jobs.completed").add(11);
  const std::string text =
      to_prometheus(FlightRecorder::global(), reg.prometheus_str());
  EXPECT_NE(text.find("esg_trace_events_total{type=\"raised\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("esg_trace_events_total{type=\"dropped\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("esg_trace_retained_events 3"), std::string::npos);
  // The registry's own metrics ride along on the same page.
  EXPECT_NE(text.find("jobs_completed 11"), std::string::npos);
}

// ---- human dump ----

TEST_F(ObsTest, DumpRendersReasonAndEvents) {
  const TraceSink sink("dumper");
  sink.raised(sample_error(ErrorKind::kJvmMissing), 9, "exec failed");
  const std::string dump =
      render_dump(FlightRecorder::global().last(10), "chronic failure");
  EXPECT_NE(dump.find("chronic failure"), std::string::npos);
  EXPECT_NE(dump.find("jvm-missing"), std::string::npos);
  EXPECT_NE(dump.find("job=9"), std::string::npos);
}

// ---- principle checker ----

TEST_F(ObsTest, SeededP1ViolationIsCaughtWithChain) {
  // A daemon that receives a perfectly explicit error and turns it into an
  // implicit crash — the exact failure mode Principle 1 forbids.
  const TraceSink sink("bad-daemon");
  const Error explicit_error = sample_error(ErrorKind::kJvmMissing);
  const std::uint64_t raise = sink.raised(explicit_error, 4);
  const std::uint64_t route = sink.routed(explicit_error, "bad-daemon", 4);
  sink.implicit(ErrorKind::kJvmMissing, ErrorScope::kRemoteResource, 4,
                "mapped to silent exit", route);

  const CheckReport report =
      PrincipleChecker().check(FlightRecorder::global());
  ASSERT_FALSE(report.ok());
  const Violation* p1 = nullptr;
  for (const Violation& v : report.violations) {
    if (v.principle == Principle::kP1) p1 = &v;
  }
  ASSERT_NE(p1, nullptr) << report.str();
  // The offending causal span chain: raise -> route -> implicit collapse.
  ASSERT_EQ(p1->chain.size(), 3u);
  EXPECT_EQ(p1->chain[0].id, raise);
  EXPECT_EQ(p1->chain[1].id, route);
  EXPECT_EQ(p1->chain[2].form, ErrorForm::kImplicit);
  EXPECT_NE(p1->message.find("bad-daemon"), std::string::npos);
}

TEST_F(ObsTest, UncaughtEscapingErrorViolatesP2) {
  const TraceSink sink("thrower");
  Error e = sample_error(ErrorKind::kDiskFull);
  sink.converted_to_escaping(e, 2, "thrown and never caught");
  const CheckReport report =
      PrincipleChecker().check(FlightRecorder::global());
  ASSERT_EQ(report.violations.size(), 1u) << report.str();
  EXPECT_EQ(report.violations[0].principle, Principle::kP2);
}

TEST_F(ObsTest, CaughtEscapingErrorSatisfiesP2) {
  const TraceSink sink("thrower");
  Error e = sample_error(ErrorKind::kDiskFull);
  sink.converted_to_escaping(e, 2, "thrown");
  sink.converted_to_explicit(e, 2, "caught one level up");
  sink.consumed(e, 2);
  const CheckReport report =
      PrincipleChecker().check(FlightRecorder::global());
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST_F(ObsTest, DroppedErrorViolatesP3) {
  const TraceSink sink("leaky");
  const std::uint64_t raise = sink.raised(sample_error(), 6);
  sink.dropped(sample_error(), 6, "nobody manages this scope");
  const CheckReport report =
      PrincipleChecker().check(FlightRecorder::global());
  ASSERT_EQ(report.violations.size(), 1u) << report.str();
  EXPECT_EQ(report.violations[0].principle, Principle::kP3);
  ASSERT_EQ(report.violations[0].chain.size(), 2u);
  EXPECT_EQ(report.violations[0].chain[0].id, raise);
}

TEST_F(ObsTest, DeliveringUnknownViolatesP4) {
  const TraceSink sink("vague");
  sink.delivered(Error(ErrorKind::kUnknown, "something went wrong"), 1);
  const CheckReport report =
      PrincipleChecker().check(FlightRecorder::global());
  ASSERT_EQ(report.violations.size(), 1u) << report.str();
  EXPECT_EQ(report.violations[0].principle, Principle::kP4);
}

TEST_F(ObsTest, StrictModeWarnsOnOpenChains) {
  const TraceSink sink("open");
  sink.raised(sample_error(), 1);  // never consumed, masked, or delivered
  const CheckReport lax = PrincipleChecker().check(FlightRecorder::global());
  EXPECT_TRUE(lax.ok());
  EXPECT_TRUE(lax.warnings.empty());

  PrincipleChecker::Options options;
  options.strict_p3 = true;
  const CheckReport strict =
      PrincipleChecker(options).check(FlightRecorder::global());
  EXPECT_TRUE(strict.ok());  // warnings, not violations
  EXPECT_EQ(strict.warnings.size(), 1u);
}

// ---- end-to-end: instrumented grid workloads ----

TEST_F(ObsTest, ScopedBlackHolePoolPassesAllPrincipleChecks) {
  // The flagship scenario: a black-hole machine in a scoped-discipline
  // pool. With the redesign's mechanisms in place the journal must show a
  // principled journey for every error — no violations.
  daemons::DisciplineConfig discipline = daemons::DisciplineConfig::scoped();
  discipline.schedd_avoidance = true;

  pool::PoolConfig config;
  config.seed = 11;
  config.discipline = discipline;
  config.machines.push_back(pool::MachineSpec::misconfigured_java("bad0"));
  config.machines.push_back(pool::MachineSpec::good("good0"));
  config.machines.push_back(pool::MachineSpec::good("good1"));

  config.trace = true;

  pool::Pool pool(config);
  std::vector<std::string> chronic;
  pool.recorder().set_on_chronic(
      [&](const std::string& reason) { chronic.push_back(reason); });
  Rng rng(3);
  pool::WorkloadOptions options;
  options.count = 12;
  options.mean_compute = SimTime::sec(5);
  for (auto& job : pool::make_workload(options, rng)) {
    pool.submit(std::move(job));
  }
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(6)));

  FlightRecorder& rec = pool.recorder();
  EXPECT_GT(rec.total_recorded(), 0u);
  // The black hole produced raises at the starter and maskings (retries)
  // at the schedd.
  EXPECT_GT(rec.count(TraceEventType::kRaised), 0u);
  EXPECT_GT(rec.count(TraceEventType::kMasked), 0u);

  const CheckReport report = PrincipleChecker().check(rec);
  EXPECT_TRUE(report.ok()) << report.str();

  // Avoidance kicked in: the chronic-failure hook saw bad0.
  ASSERT_FALSE(chronic.empty());
  EXPECT_NE(chronic[0].find("bad0"), std::string::npos);

  // And the journal exports cleanly.
  EXPECT_TRUE(JsonValidator(to_chrome_trace(rec)).valid());
}

TEST_F(ObsTest, NaiveDisciplineProducesP1ViolationEndToEnd) {
  // The §2.3 pathology, observed live: under the naive discipline the
  // starter launders a missing JVM into "exit code 1". The checker must
  // see the explicit error become implicit.
  pool::PoolConfig config;
  config.seed = 13;
  config.discipline = daemons::DisciplineConfig::naive();
  pool::MachineSpec liar;
  liar.name = "bad0";
  liar.startd.owner_asserts_java = true;
  liar.startd.jvm.installed = false;  // exec fails outright
  config.machines.push_back(std::move(liar));
  config.trace = true;

  pool::Pool pool(config);
  pool.submit(pool::make_hello_job());
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(2)));

  const CheckReport report = PrincipleChecker().check(pool.recorder());
  bool found_p1 = false;
  for (const Violation& v : report.violations) {
    if (v.principle == Principle::kP1 &&
        v.message.find("jvm-missing") != std::string::npos) {
      found_p1 = true;
      EXPECT_GE(v.chain.size(), 2u);
    }
  }
  EXPECT_TRUE(found_p1) << report.str();
}

}  // namespace
}  // namespace esg::obs
