// End-to-end integration tests: whole-grid scenarios through the Pool.
#include <gtest/gtest.h>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

namespace esg::pool {
namespace {

PoolConfig two_good_machines(daemons::DisciplineConfig discipline) {
  PoolConfig config;
  config.seed = 101;
  config.discipline = discipline;
  config.machines.push_back(MachineSpec::good("exec0"));
  config.machines.push_back(MachineSpec::good("exec1"));
  return config;
}

TEST(PoolEndToEnd, HelloJobCompletes) {
  Pool pool(two_good_machines(daemons::DisciplineConfig::scoped()));
  const JobId id = pool.submit(make_hello_job());
  ASSERT_TRUE(pool.run_until_done(SimTime::minutes(10)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->state, daemons::JobState::kCompleted);
  ASSERT_TRUE(record->final_summary.have_program_result);
  EXPECT_EQ(record->final_summary.program_result.exit_by,
            jvm::ResultFile::ExitBy::kCompletion);
}

TEST(PoolEndToEnd, BatchOfJobsAllComplete) {
  Pool pool(two_good_machines(daemons::DisciplineConfig::scoped()));
  Rng rng(5);
  WorkloadOptions options;
  options.count = 10;
  options.mean_compute = SimTime::sec(5);
  for (auto& job : make_workload(options, rng)) pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const PoolReport report = pool.report();
  EXPECT_EQ(report.jobs_total, 10);
  EXPECT_EQ(report.completed_genuine, 10);
  EXPECT_EQ(report.user_incidental_exposures, 0);
}

TEST(PoolEndToEnd, ProgramErrorsAreDeliveredToUser) {
  // §2.3: users *want* to see ArrayIndexOutOfBoundsException.
  Pool pool(two_good_machines(daemons::DisciplineConfig::scoped()));
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("Crashy")
                    .throw_exception(ErrorKind::kArrayIndexOutOfBounds)
                    .build();
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::minutes(10)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->state, daemons::JobState::kCompleted);
  ASSERT_TRUE(record->final_summary.have_program_result);
  ASSERT_TRUE(record->final_summary.program_result.error.has_value());
  EXPECT_EQ(record->final_summary.program_result.error->kind(),
            ErrorKind::kArrayIndexOutOfBounds);
  // One attempt only — program errors must not trigger retries.
  EXPECT_EQ(record->attempts.size(), 1u);
}

TEST(PoolEndToEnd, MisconfiguredMachineRetriedElsewhereUnderScopedDiscipline) {
  PoolConfig config;
  config.seed = 7;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(MachineSpec::misconfigured_java("bad0"));
  config.machines.push_back(MachineSpec::good("good0"));
  Pool pool(config);
  const JobId id = pool.submit(make_hello_job());
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->state, daemons::JobState::kCompleted);
  const PoolReport report = pool.report();
  EXPECT_EQ(report.user_incidental_exposures, 0);
}

TEST(PoolEndToEnd, NaiveDisciplineExposesIncidentalErrors) {
  // The §2.3 experience: with only a broken machine available, the user
  // gets the failure as a result.
  PoolConfig config;
  config.seed = 7;
  config.discipline = daemons::DisciplineConfig::naive();
  config.machines.push_back(MachineSpec::misconfigured_java("bad0"));
  Pool pool(config);
  pool.submit(make_hello_job());
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const PoolReport report = pool.report();
  EXPECT_EQ(report.user_incidental_exposures, 1);
  EXPECT_EQ(report.completed_genuine, 0);
}

TEST(PoolEndToEnd, ScopedDisciplineShieldsWhenAlternativeExists) {
  PoolConfig config;
  config.seed = 9;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(MachineSpec::misconfigured_java("bad0"));
  config.machines.push_back(MachineSpec::good("good0"));
  Pool pool(config);
  Rng rng(2);
  WorkloadOptions options;
  options.count = 6;
  options.mean_compute = SimTime::sec(2);
  for (auto& job : make_workload(options, rng)) pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(2)));
  const PoolReport report = pool.report();
  EXPECT_EQ(report.completed_genuine, 6);
  EXPECT_EQ(report.user_incidental_exposures, 0);
}

TEST(PoolEndToEnd, CorruptImageIsUnexecutableNotRetriedForever) {
  Pool pool(two_good_machines(daemons::DisciplineConfig::scoped()));
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("Broken").corrupt_image().build();
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->state, daemons::JobState::kUnexecutable);
  // Job scope: one attempt was enough to know.
  EXPECT_EQ(record->attempts.size(), 1u);
}

TEST(PoolEndToEnd, MissingInputFileIsJobScope) {
  Pool pool(two_good_machines(daemons::DisciplineConfig::scoped()));
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("NeedsInput").build();
  job.input_files = {"/home/data/never_staged"};
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->state, daemons::JobState::kUnexecutable);
  ASSERT_TRUE(record->final_summary.environment_error.has_value());
  EXPECT_EQ(record->final_summary.environment_error->scope(),
            ErrorScope::kJob);
}

TEST(PoolEndToEnd, RemoteIoThroughProxyWorks) {
  Pool pool(two_good_machines(daemons::DisciplineConfig::scoped()));
  stage_workload_inputs(pool);
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("Reader")
                    .open_read("/home/data/input.dat", 0)
                    .read(0, 1024)
                    .close_stream(0)
                    .open_write("/home/data/copy.out", 1)
                    .write(1, 512)
                    .close_stream(1)
                    .build();
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->state, daemons::JobState::kCompleted);
  // The write really landed on the submit machine, via proxy + shadow.
  EXPECT_EQ(pool.submit_fs().stat("/home/data/copy.out").value().size, 512u);
}

TEST(PoolEndToEnd, InputFileTransferStagesData) {
  Pool pool(two_good_machines(daemons::DisciplineConfig::scoped()));
  pool.stage_input("/home/data/payload", "PAYLOAD-BYTES");
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("Consumer")
                    .open_read("payload", 0)  // relative: scratch copy
                    .read(0, 13)
                    .close_stream(0)
                    .build();
  job.input_files = {"/home/data/payload"};
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
}

TEST(PoolEndToEnd, OutputFilesComeBack) {
  Pool pool(two_good_machines(daemons::DisciplineConfig::scoped()));
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("Producer")
                    .open_write("result.dat", 0)  // relative: scratch
                    .write(0, 256)
                    .close_stream(0)
                    .build();
  job.output_files = {"result.dat"};
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  ASSERT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
  const std::string path =
      "/out/job_" + std::to_string(id.value()) + "/result.dat";
  Result<fs::Stat> s = pool.submit_fs().stat(path);
  ASSERT_TRUE(s.ok()) << path;
  EXPECT_EQ(s.value().size, 256u);
}

TEST(PoolEndToEnd, OfflineHomeFilesystemRetriesUntilItReturns) {
  // §4: "the home file system was offline" — local-resource scope; the
  // schedd keeps the job and retries rather than bouncing it to the user.
  PoolConfig config = two_good_machines(daemons::DisciplineConfig::scoped());
  Pool pool(config);
  stage_workload_inputs(pool);
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("Reader")
                    .open_read("/home/data/input.dat", 0)
                    .read(0, 64)
                    .close_stream(0)
                    .build();
  const JobId id = pool.submit(std::move(job));
  pool.boot();
  // Take /home down now and bring it back after two minutes.
  pool.submit_fs().set_mount_online("/home", false);
  pool.engine().schedule(SimTime::minutes(2), [&pool] {
    pool.submit_fs().set_mount_online("/home", true);
  });
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(2)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->state, daemons::JobState::kCompleted);
  EXPECT_GE(record->attempts.size(), 2u);  // at least one failed attempt
  const PoolReport report = pool.report();
  EXPECT_EQ(report.user_incidental_exposures, 0);
}

TEST(PoolEndToEnd, OutOfMemoryMachineRetriedElsewhere) {
  PoolConfig config;
  config.seed = 13;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(MachineSpec::tiny_heap("small0", 1 << 10));
  config.machines.push_back(MachineSpec::good("big0"));
  Pool pool(config);
  daemons::JobDescription job;
  job.program =
      jvm::ProgramBuilder("Hungry").alloc(1 << 20).compute(SimTime::sec(1)).build();
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(2)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->state, daemons::JobState::kCompleted)
      << record->final_summary.str();
}

TEST(PoolEndToEnd, ReportAccountingIsConsistent) {
  Pool pool(two_good_machines(daemons::DisciplineConfig::scoped()));
  Rng rng(3);
  WorkloadOptions options;
  options.count = 12;
  options.mean_compute = SimTime::sec(3);
  options.program_error_fraction = 0.3;
  for (auto& job : make_workload(options, rng)) pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(2)));
  const PoolReport report = pool.report();
  EXPECT_EQ(report.jobs_total, 12);
  EXPECT_EQ(report.completed_genuine + report.completed_program_error +
                report.user_incidental_exposures + report.unexecutable +
                report.unfinished,
            12);
  EXPECT_EQ(report.unfinished, 0);
  EXPECT_GT(report.network_messages, 0u);
}

}  // namespace
}  // namespace esg::pool

namespace esg::pool {
namespace {

TEST(Report, RenderingsContainHeadlineNumbers) {
  PoolReport report;
  report.discipline = "scoped";
  report.jobs_total = 9;
  report.completed_genuine = 5;
  report.user_incidental_exposures = 2;
  report.wasted_cpu_seconds = 12.5;
  const std::string text = report.str();
  EXPECT_NE(text.find("scoped"), std::string::npos);
  EXPECT_NE(text.find("9"), std::string::npos);
  EXPECT_NE(text.find("12.5"), std::string::npos);
  const std::string row = report.table_row("mylabel");
  EXPECT_NE(row.find("mylabel"), std::string::npos);
  // Header and row columns align in count.
  EXPECT_FALSE(PoolReport::table_header().empty());
}

TEST(Workload, GeneratorsAreDeterministicPerRngState) {
  WorkloadOptions options;
  options.count = 10;
  options.program_error_fraction = 0.3;
  options.remote_io_fraction = 0.5;
  Rng a(5);
  Rng b(5);
  const auto jobs_a = make_workload(options, a);
  const auto jobs_b = make_workload(options, b);
  ASSERT_EQ(jobs_a.size(), jobs_b.size());
  for (std::size_t i = 0; i < jobs_a.size(); ++i) {
    EXPECT_EQ(jvm::serialize_program(jobs_a[i].program),
              jvm::serialize_program(jobs_b[i].program));
  }
}

}  // namespace
}  // namespace esg::pool
