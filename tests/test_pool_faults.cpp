// Pool-level fault-injection scenarios: universes, eviction, matchmaker
// outage, escalation, flaky networks, and discipline properties over
// seeds.
#include <gtest/gtest.h>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

namespace esg::pool {
namespace {

PoolConfig small_pool(daemons::DisciplineConfig discipline,
                      std::uint64_t seed = 51) {
  PoolConfig config;
  config.seed = seed;
  config.discipline = discipline;
  config.machines.push_back(MachineSpec::good("exec0"));
  config.machines.push_back(MachineSpec::good("exec1"));
  return config;
}

// ---- Vanilla universe ----

TEST(VanillaUniverse, RunsWithoutJvmOrProxy) {
  Pool pool(small_pool(daemons::DisciplineConfig::scoped()));
  daemons::JobDescription job;
  job.universe = daemons::Universe::kVanilla;
  job.requirements = "true";  // no HasJava needed
  job.program = jvm::ProgramBuilder("native_sim")
                    .compute(SimTime::sec(3))
                    .open_write("out.dat", 0)  // relative: scratch
                    .write(0, 100)
                    .close_stream(0)
                    .build();
  job.output_files = {"out.dat"};
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  EXPECT_EQ(record->state, daemons::JobState::kCompleted);
  // Output transfer works for vanilla too.
  const std::string out_path =
      "/out/job_" + std::to_string(id.value()) + "/out.dat";
  EXPECT_TRUE(pool.submit_fs().exists(out_path));
}

TEST(VanillaUniverse, RunsOnMachinesWithoutJava) {
  PoolConfig config;
  config.seed = 5;
  config.discipline = daemons::DisciplineConfig::scoped();
  MachineSpec nojava = MachineSpec::good("nojava0");
  nojava.startd.owner_asserts_java = false;
  config.machines.push_back(nojava);
  Pool pool(config);
  daemons::JobDescription job;
  job.universe = daemons::Universe::kVanilla;
  job.requirements = "true";
  job.program = jvm::ProgramBuilder("p").compute(SimTime::sec(1)).build();
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
}

TEST(VanillaUniverse, JavaJobsDoNotMatchNoJavaMachines) {
  PoolConfig config;
  config.seed = 5;
  config.discipline = daemons::DisciplineConfig::scoped();
  MachineSpec nojava = MachineSpec::good("nojava0");
  nojava.startd.owner_asserts_java = false;
  config.machines.push_back(nojava);
  Pool pool(config);
  const JobId id = pool.submit(make_hello_job());  // java universe
  EXPECT_FALSE(pool.run_until_done(SimTime::minutes(5)));
  EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kIdle);
}

TEST(VanillaUniverse, ExitCodeIsAllTheUserGets) {
  // Vanilla has no wrapper: an environmental failure inside the program
  // surfaces as a bare exit code, even under the scoped discipline.
  Pool pool(small_pool(daemons::DisciplineConfig::scoped()));
  daemons::JobDescription job;
  job.universe = daemons::Universe::kVanilla;
  job.requirements = "true";
  job.program = jvm::ProgramBuilder("p")
                    .throw_exception(ErrorKind::kNullPointer)
                    .build();
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  EXPECT_EQ(record->state, daemons::JobState::kCompleted);
  ASSERT_TRUE(record->final_summary.have_program_result);
  EXPECT_EQ(record->final_summary.program_result.exit_code, 1);
}

// ---- owner activity / eviction ----

TEST(Eviction, OwnerReturnEvictsAndJobMovesOn) {
  PoolConfig config;
  config.seed = 77;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(MachineSpec::good("aaa_desk"));
  config.machines.push_back(MachineSpec::good("zzz_farm"));
  Pool pool(config);
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("long").compute(SimTime::minutes(10)).build();
  const JobId id = pool.submit(std::move(job));
  pool.boot();
  // The workstation owner sits down one minute in.
  pool.engine().schedule(SimTime::minutes(1), [&pool] {
    pool.startd("aaa_desk")->set_owner_active(true);
  });
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(2)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  EXPECT_EQ(record->state, daemons::JobState::kCompleted);
  // The eviction surfaced with remote-resource scope and triggered a
  // retry — not a user-visible failure.
  bool saw_eviction = false;
  for (const daemons::AttemptRecord& attempt : record->attempts) {
    if (!attempt.summary.have_program_result &&
        attempt.summary.environment_error.has_value() &&
        attempt.summary.environment_error->kind() ==
            ErrorKind::kPolicyRefused) {
      saw_eviction = true;
      EXPECT_EQ(attempt.summary.environment_error->scope(),
                ErrorScope::kRemoteResource);
    }
  }
  EXPECT_TRUE(saw_eviction);
  EXPECT_EQ(pool.report().user_incidental_exposures, 0);
}

TEST(Eviction, ActiveOwnerRefusesNewClaims) {
  PoolConfig config;
  config.seed = 78;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(MachineSpec::good("desk0"));
  Pool pool(config);
  pool.boot();
  pool.startd("desk0")->set_owner_active(true);
  const JobId id = pool.submit(make_hello_job());
  EXPECT_FALSE(pool.run_until_done(SimTime::minutes(3)));
  EXPECT_NE(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
  // Owner leaves; the job proceeds.
  pool.startd("desk0")->set_owner_active(false);
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
}

// ---- matchmaker outage ----

TEST(MatchmakerOutage, PoolStallsAndRecovers) {
  Pool pool(small_pool(daemons::DisciplineConfig::scoped(), 91));
  const JobId id = pool.submit(make_hello_job());
  pool.boot();
  pool.matchmaker().shutdown();
  EXPECT_FALSE(pool.run_until_done(SimTime::minutes(3)));
  EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kIdle);
  // The matchmaker comes back (same address); ads flow again and the job
  // completes without anyone having restarted schedds or startds.
  pool.matchmaker().boot();
  ASSERT_TRUE(pool.run_until_done(SimTime::minutes(10)));
  EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
}

// ---- scope escalation in the schedd ----

TEST(Escalation, PersistentVmFailureIsGivenUpWithEscalatedScope) {
  // Only machine: a heap too small for the job, forever. Without
  // escalation the schedd would burn max_attempts; with it, the job is
  // returned once the virtual-machine-scope streak crosses the threshold.
  PoolConfig config;
  config.seed = 13;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.max_attempts = 1000;  // escalation must fire first
  config.machines.push_back(MachineSpec::tiny_heap("small0", 1 << 10));
  Pool pool(config);
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("hungry").alloc(1 << 20).build();
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(4)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  EXPECT_EQ(record->state, daemons::JobState::kUnexecutable);
  ASSERT_TRUE(record->final_summary.environment_error.has_value());
  // Scope was widened past virtual-machine by persistence.
  EXPECT_GE(scope_rank(record->final_summary.environment_error->scope()),
            scope_rank(ErrorScope::kCluster));
  EXPECT_LT(record->attempts.size(), 1000u);
}

TEST(Escalation, DisabledMeansMaxAttemptsGoverns) {
  PoolConfig config;
  config.seed = 13;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.use_escalation = false;
  config.discipline.max_attempts = 5;
  config.machines.push_back(MachineSpec::tiny_heap("small0", 1 << 10));
  Pool pool(config);
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("hungry").alloc(1 << 20).build();
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(4)));
  EXPECT_EQ(pool.schedd().job(id)->attempts.size(), 5u);
}

// ---- flaky networks ----

TEST(FlakyNetwork, JobsSurviveMessageLoss) {
  PoolConfig config;
  config.seed = 23;
  config.discipline = daemons::DisciplineConfig::scoped();
  for (int i = 0; i < 3; ++i) {
    MachineSpec spec = MachineSpec::good("exec" + std::to_string(i));
    spec.net_faults.drop_msg_prob = 0.002;  // breaks ~1 connection in 500 msgs
    config.machines.push_back(spec);
  }
  Pool pool(config);
  Rng rng(23);
  WorkloadOptions options;
  options.count = 15;
  options.mean_compute = SimTime::sec(10);
  for (auto& job : make_workload(options, rng)) pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(6)));
  const PoolReport report = pool.report();
  EXPECT_EQ(report.unfinished, 0);
  EXPECT_EQ(report.user_incidental_exposures, 0);
}

TEST(Partition, ExecHostPartitionBreaksJobAndHeals) {
  PoolConfig config;
  config.seed = 29;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(MachineSpec::good("island0"));
  config.machines.push_back(MachineSpec::good("mainland0"));
  Pool pool(config);
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("long")
                    .compute(SimTime::minutes(5))
                    .open_read("/home/data/input.dat", 0)
                    .read(0, 1024)
                    .close_stream(0)
                    .build();
  const JobId id = pool.submit(std::move(job));
  stage_workload_inputs(pool);
  pool.boot();
  // island0 is cut off two minutes in; heals after ten minutes.
  pool.engine().schedule(SimTime::minutes(2), [&pool] {
    pool.fabric().set_partitioned("island0", true);
  });
  pool.engine().schedule(SimTime::minutes(12), [&pool] {
    pool.fabric().set_partitioned("island0", false);
  });
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(4)));
  EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
  EXPECT_EQ(pool.report().user_incidental_exposures, 0);
}

// ---- mitigations at pool level ----

TEST(Mitigations, SelfTestKeepsBrokenMachinesOutOfTheAdStream) {
  PoolConfig config;
  config.seed = 31;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.startd_selftest = true;
  config.machines.push_back(MachineSpec::misconfigured_java("bad0"));
  config.machines.push_back(MachineSpec::good("good0"));
  Pool pool(config);
  const JobId id = pool.submit(make_hello_job());
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  EXPECT_EQ(record->state, daemons::JobState::kCompleted);
  // Exactly one attempt: the broken machine never advertised Java.
  EXPECT_EQ(record->attempts.size(), 1u);
  EXPECT_EQ(record->attempts[0].machine, "good0");
}

TEST(Mitigations, AvoidanceShunsChronicallyFailingMachine) {
  PoolConfig config;
  config.seed = 37;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.schedd_avoidance = true;
  config.discipline.avoidance_threshold = 2;
  config.machines.push_back(MachineSpec::misconfigured_java("bad0"));
  config.machines.push_back(MachineSpec::good("good0"));
  Pool pool(config);
  Rng rng(37);
  WorkloadOptions options;
  options.count = 10;
  options.mean_compute = SimTime::sec(5);
  for (auto& job : make_workload(options, rng)) pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(2)));
  // After the threshold, bad0 is on the avoid list.
  EXPECT_GE(pool.schedd().avoided_machines().count("bad0"), 1u);
  // Waste is bounded by the threshold, not the job count.
  std::uint64_t bad_attempts = 0;
  for (const auto& truth : pool.ground_truth().entries()) {
    if (truth.machine == "bad0") ++bad_attempts;
  }
  EXPECT_LE(bad_attempts, 4u);  // threshold + races
}

// ---- properties over seeds ----

class DisciplineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisciplineProperty, ScopedNeverExposesIncidentalsWhenGoodMachinesExist) {
  PoolConfig config;
  config.seed = GetParam();
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(MachineSpec::misconfigured_java("bad0"));
  config.machines.push_back(MachineSpec::tiny_heap("small0", 4 << 20));
  config.machines.push_back(MachineSpec::good("good0"));
  config.machines.push_back(MachineSpec::good("good1"));
  Pool pool(config);
  pool::stage_workload_inputs(pool);
  Rng rng(GetParam());
  WorkloadOptions options;
  options.count = 20;
  options.mean_compute = SimTime::sec(10);
  options.program_error_fraction = 0.2;
  options.remote_io_fraction = 0.3;
  options.big_alloc_fraction = 0.2;
  options.big_alloc_bytes = 32 << 20;
  for (auto& job : make_workload(options, rng)) pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(8)));
  const PoolReport report = pool.report();
  EXPECT_EQ(report.user_incidental_exposures, 0) << report.str();
  EXPECT_EQ(report.unfinished, 0);
  // Accounting identity holds for every seed.
  EXPECT_EQ(report.completed_genuine + report.completed_program_error +
                report.user_incidental_exposures + report.unexecutable,
            report.jobs_total);
}

TEST_P(DisciplineProperty, DeterministicReplay) {
  auto run_once = [&] {
    PoolConfig config;
    config.seed = GetParam();
    config.discipline = daemons::DisciplineConfig::scoped();
    config.machines.push_back(MachineSpec::misconfigured_java("bad0"));
    config.machines.push_back(MachineSpec::good("good0"));
    Pool pool(config);
    Rng rng(GetParam());
    WorkloadOptions options;
    options.count = 8;
    for (auto& job : make_workload(options, rng)) pool.submit(std::move(job));
    pool.run_until_done(SimTime::hours(2));
    const PoolReport report = pool.report();
    return std::make_tuple(report.total_attempts, report.network_messages,
                           report.makespan_seconds);
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisciplineProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace esg::pool

namespace esg::pool {
namespace {

TEST(Status, SnapshotListsMachinesAndJobs) {
  PoolConfig config;
  config.seed = 99;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(MachineSpec::good("exec0"));
  Pool pool(config);
  const JobId id = pool.submit(make_hello_job());
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const std::string status = pool.status_string();
  EXPECT_NE(status.find("exec0"), std::string::npos);
  EXPECT_NE(status.find("Unclaimed"), std::string::npos);
  EXPECT_NE(status.find("completed"), std::string::npos);
  EXPECT_NE(status.find(std::to_string(id.value())), std::string::npos);
}

TEST(HostileMessages, ScheddIgnoresGarbageMatchNotifications) {
  PoolConfig config;
  config.seed = 98;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(MachineSpec::good("exec0"));
  Pool pool(config);
  const JobId id = pool.submit(make_hello_job());
  pool.boot();

  // A hostile/buggy peer floods the schedd with malformed notifications.
  daemons::Timeouts timeouts;
  for (int i = 0; i < 5; ++i) {
    daemons::rpc_connect(
        pool.engine(), pool.fabric(), "intruder",
        pool.schedd().address(), timeouts.rpc_timeout,
        [i](Result<std::shared_ptr<daemons::RpcChannel>> ch) {
          if (!ch.ok()) return;
          classad::ClassAd junk;
          junk.set("JobId", 9999 + i);          // no such job
          junk.set("StartdName", "phantom");
          junk.set("StartdHost", "");           // missing host
          ch.value()->notify(daemons::kCmdNotifyMatch, junk);
          ch.value()->close();
        });
  }
  // And raw garbage bytes at the protocol level.
  pool.fabric().connect("intruder", pool.schedd().address(),
                        [](Result<net::Endpoint> ep) {
                          if (ep.ok()) {
                            net::Endpoint e = std::move(ep).value();
                            (void)e.send("complete garbage [[[ ;;");
                          }
                        });
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
}

TEST(HostileMessages, StartdSurvivesMalformedClaimRequests) {
  PoolConfig config;
  config.seed = 97;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(MachineSpec::good("exec0"));
  Pool pool(config);
  pool.boot();
  daemons::Timeouts timeouts;
  bool denied = false;
  daemons::rpc_connect(
      pool.engine(), pool.fabric(), "intruder",
      pool.startd("exec0")->address(), timeouts.rpc_timeout,
      [&denied](Result<std::shared_ptr<daemons::RpcChannel>> ch) {
        if (!ch.ok()) return;
        static std::shared_ptr<daemons::RpcChannel> held;
        held = std::move(ch).value();
        classad::ClassAd junk;  // claim request without a job ad
        held->request(daemons::kCmdRequestClaim, junk,
                      [&denied](Result<classad::ClassAd> r) {
                        denied = r.ok() && !r.value().eval_bool("Granted");
                      });
      });
  pool.engine().run(pool.engine().now() + SimTime::sec(5));
  EXPECT_TRUE(denied);
  EXPECT_FALSE(pool.startd("exec0")->claimed());
  // The machine still works for real jobs afterwards.
  const JobId id = pool.submit(make_hello_job());
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
}

}  // namespace
}  // namespace esg::pool

namespace esg::pool {
namespace {

TEST(Mitigations, AvoidanceExpiresAfterCooldown) {
  PoolConfig config;
  config.seed = 131;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.schedd_avoidance = true;
  config.discipline.avoidance_threshold = 1;
  config.discipline.avoidance_cooldown = SimTime::minutes(2);
  config.discipline.use_escalation = false;
  config.discipline.max_attempts = 8;
  config.machines.push_back(MachineSpec::misconfigured_java("bad0"));
  Pool pool(config);
  pool.submit(make_hello_job());
  // With only one (broken) machine, the job eventually exhausts attempts;
  // what matters here is the avoidance rhythm in between.
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(4)));
  const auto& truths = pool.ground_truth().entries();
  ASSERT_GE(truths.size(), 2u);
  // bad0 was retried again (the cooldown expired) — avoidance is a
  // temporary judgement, not a blacklist.
  int bad_attempts = 0;
  for (const auto& truth : truths) {
    if (truth.machine == "bad0") ++bad_attempts;
  }
  EXPECT_GE(bad_attempts, 2);
}

}  // namespace
}  // namespace esg::pool

namespace esg::pool {
namespace {

TEST(AuditIntegration, ScopedRunAppliesThePrinciples) {
  PoolConfig config;
  config.seed = 141;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(MachineSpec::good("exec0"));
  Pool pool(config);
  stage_workload_inputs(pool);
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("reader")
                    .open_read("/home/data/input.dat", 0)
                    .read(0, 256)
                    .close_stream(0)
                    .build();
  pool.submit(std::move(job));
  pool.boot();
  // An offline window at the start forces the first attempt's open into
  // an escaping conversion (P2); recovery lets the retry complete.
  pool.submit_fs().set_mount_online("/home", false);
  pool.engine().schedule(SimTime::minutes(2), [&pool] {
    pool.submit_fs().set_mount_online("/home", true);
  });
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(2)));
  // P2 fired in the I/O library, P3 in the schedd, P4 on contractual
  // errors; no violations anywhere under the scoped discipline.
  EXPECT_GT(pool.audit().applied(Principle::kP2), 0u);
  EXPECT_GT(pool.audit().applied(Principle::kP3), 0u);
  EXPECT_EQ(pool.audit().violated(Principle::kP3), 0u);
  EXPECT_EQ(pool.audit().violated(Principle::kP4), 0u);
}

TEST(AuditIntegration, NaiveRunViolatesThePrinciples) {
  PoolConfig config;
  config.seed = 142;
  config.discipline = daemons::DisciplineConfig::naive();
  config.machines.push_back(MachineSpec::good("exec0"));
  Pool pool(config);
  stage_workload_inputs(pool);
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("reader")
                    .open_read("/home/data/input.dat", 0)
                    .read(0, 256)
                    .close_stream(0)
                    .build();
  pool.submit(std::move(job));
  pool.boot();
  pool.submit_fs().set_mount_online("/home", false);
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(2)));
  // The generic I/O library leaked a non-contractual error to the program:
  // P4 (and the P3 it implies) violated.
  EXPECT_GT(pool.audit().violated(Principle::kP4), 0u);
  EXPECT_GT(pool.audit().violated(Principle::kP3), 0u);
}

}  // namespace
}  // namespace esg::pool
