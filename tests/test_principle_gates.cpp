// Principle gates: the runtime PrincipleChecker run over the repertoire of
// example/bench workloads as CTest cases, plus the dynamic-vs-static
// cross-check — the flight recorder's verdict on what errors *did* must
// agree with the ScopeVerifier's verdict on what the declared topology
// *permits*.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/verify.hpp"
#include "common/rng.hpp"
#include "daemons/config.hpp"
#include "obs/checker.hpp"
#include "obs/trace.hpp"
#include "pool/pool.hpp"
#include "pool/topology.hpp"
#include "pool/workload.hpp"

namespace esg {
namespace {

using obs::CheckReport;
using obs::PrincipleChecker;

/// Each gate runs its pool with per-pool tracing (PoolConfig::trace), so
/// the journal under test is the pool's own recorder — no process-wide
/// state to set up or tear down.
class PrincipleGateTest : public ::testing::Test {
 protected:
  /// Run `config` with a make_workload batch and principle-check the
  /// recorded journal. Every scoped-discipline workload must come back
  /// clean: these are the per-workload gates.
  CheckReport run_gate(pool::PoolConfig config,
                       pool::WorkloadOptions options,
                       std::uint64_t workload_seed = 3) {
    config.trace = true;
    config.trace_capacity = 1 << 15;
    pool::Pool pool(std::move(config));
    pool::stage_workload_inputs(pool);
    Rng rng(workload_seed);
    for (auto& job : pool::make_workload(options, rng)) {
      pool.submit(std::move(job));
    }
    EXPECT_TRUE(pool.run_until_done(SimTime::hours(8)));
    EXPECT_GT(pool.recorder().total_recorded(), 0u);
    return PrincipleChecker().check(pool.recorder());
  }
};

pool::PoolConfig scoped_config(std::uint64_t seed) {
  pool::PoolConfig config;
  config.seed = seed;
  config.discipline = daemons::DisciplineConfig::scoped();
  return config;
}

// ---- per-workload gates (examples/ and bench/ scenarios) ----

TEST_F(PrincipleGateTest, QuickstartHelloWorkloadIsPrincipled) {
  pool::PoolConfig config = scoped_config(7);
  config.trace = true;
  config.machines.push_back(pool::MachineSpec::good());

  pool::Pool pool(std::move(config));
  pool.submit(pool::make_hello_job());
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const CheckReport report = PrincipleChecker().check(pool.recorder());
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST_F(PrincipleGateTest, BlackHolePoolWorkloadIsPrincipled) {
  // examples/blackhole_pool + flight_recorder_demo: a lying machine in a
  // scoped pool with avoidance on.
  pool::PoolConfig config = scoped_config(11);
  config.discipline.schedd_avoidance = true;
  config.machines.push_back(pool::MachineSpec::misconfigured_java("bad0"));
  config.machines.push_back(pool::MachineSpec::good("good0"));
  config.machines.push_back(pool::MachineSpec::good("good1"));

  pool::WorkloadOptions options;
  options.count = 12;
  options.mean_compute = SimTime::sec(5);
  const CheckReport report = run_gate(std::move(config), options);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST_F(PrincipleGateTest, JavaUniverseMixedWorkloadIsPrincipled) {
  // examples/java_universe_demo + bench/endtoend: program errors, nonzero
  // exits, and proxy I/O in one batch.
  pool::PoolConfig config = scoped_config(19);
  config.machines.push_back(pool::MachineSpec::good("exec0"));
  config.machines.push_back(pool::MachineSpec::good("exec1"));

  pool::WorkloadOptions options;
  options.count = 14;
  options.mean_compute = SimTime::sec(5);
  options.program_error_fraction = 0.2;
  options.nonzero_exit_fraction = 0.2;
  options.remote_io_fraction = 0.3;
  options.remote_write_fraction = 0.2;
  const CheckReport report = run_gate(std::move(config), options);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST_F(PrincipleGateTest, TinyHeapWorkloadIsPrincipled) {
  // bench/fig4_jvm_result_codes territory: virtual-machine-scope failures
  // from aggressive allocation on a small-heap machine.
  pool::PoolConfig config = scoped_config(23);
  config.machines.push_back(pool::MachineSpec::tiny_heap("small0"));
  config.machines.push_back(pool::MachineSpec::good("good0"));

  pool::WorkloadOptions options;
  options.count = 10;
  options.mean_compute = SimTime::sec(5);
  options.big_alloc_fraction = 0.4;
  options.big_alloc_bytes = 1LL << 26;
  const CheckReport report = run_gate(std::move(config), options);
  EXPECT_TRUE(report.ok()) << report.str();
}

TEST_F(PrincipleGateTest, FaultyFilesystemWorkloadIsPrincipled) {
  // bench/fs_bench territory: transient local I/O faults are masked by
  // retries — masking is a principled disposition, not a violation.
  pool::PoolConfig config = scoped_config(29);
  pool::MachineSpec flaky = pool::MachineSpec::good("flaky0");
  flaky.fs_fault_rate = 0.1;
  config.machines.push_back(std::move(flaky));
  config.machines.push_back(pool::MachineSpec::good("good0"));

  pool::WorkloadOptions options;
  options.count = 10;
  options.mean_compute = SimTime::sec(5);
  options.remote_io_fraction = 0.3;
  const CheckReport report = run_gate(std::move(config), options);
  EXPECT_TRUE(report.ok()) << report.str();
}

// ---- dynamic-vs-static cross-check ----

TEST_F(PrincipleGateTest, ScopedDynamicAndStaticVerdictsAgreeOnClean) {
  // Both layers must acquit the scoped discipline: the verifier over the
  // declared topology, and the checker over an actual run's journal.
  const analysis::AnalysisReport static_report = analysis::ScopeVerifier()
      .verify(pool::describe_pool_topology(daemons::DisciplineConfig::scoped()));
  EXPECT_TRUE(static_report.ok()) << static_report.str();

  pool::PoolConfig config = scoped_config(31);
  config.discipline.schedd_avoidance = true;
  config.machines.push_back(pool::MachineSpec::misconfigured_java("bad0"));
  config.machines.push_back(pool::MachineSpec::good("good0"));

  pool::WorkloadOptions options;
  options.count = 10;
  options.mean_compute = SimTime::sec(5);
  const CheckReport dynamic_report = run_gate(std::move(config), options);
  EXPECT_TRUE(dynamic_report.ok()) << dynamic_report.str();
}

TEST_F(PrincipleGateTest, NaiveDynamicViolationsArePredictedStatically) {
  // The cross-check with teeth: every principle the checker catches the
  // naive discipline breaking at runtime must already be a finding of the
  // static verifier over the naive topology — the model checker predicts
  // the crash before the crash.
  const analysis::AnalysisReport static_report = analysis::ScopeVerifier()
      .verify(pool::describe_pool_topology(daemons::DisciplineConfig::naive()));
  ASSERT_FALSE(static_report.ok());

  pool::PoolConfig config;
  config.seed = 13;
  config.trace = true;
  config.discipline = daemons::DisciplineConfig::naive();
  pool::MachineSpec liar;
  liar.name = "bad0";
  liar.startd.owner_asserts_java = true;
  liar.startd.jvm.installed = false;
  config.machines.push_back(std::move(liar));

  pool::Pool pool(std::move(config));
  pool.submit(pool::make_hello_job());
  pool.submit(pool::make_hello_job());
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(2)));

  const CheckReport dynamic_report =
      PrincipleChecker().check(pool.recorder());
  ASSERT_FALSE(dynamic_report.ok()) << "naive run produced no violations";

  std::set<Principle> dynamic_principles;
  for (const obs::Violation& v : dynamic_report.violations) {
    dynamic_principles.insert(v.principle);
  }
  EXPECT_NE(dynamic_principles.count(Principle::kP1), 0u)
      << dynamic_report.str();
  for (const Principle p : dynamic_principles) {
    EXPECT_TRUE(static_report.has(p))
        << "dynamic violation of " << static_cast<int>(p)
        << " was not predicted by the static verifier:\n"
        << static_report.str();
  }
}

}  // namespace
}  // namespace esg
