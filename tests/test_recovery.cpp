// Schedd crash recovery from the spool journal (§2.1: "a user submits
// jobs to a schedd, which keeps the job state in persistent storage").
#include <gtest/gtest.h>

#include "daemons/matchmaker.hpp"
#include "daemons/schedd.hpp"
#include "daemons/startd.hpp"
#include "pool/workload.hpp"

namespace esg::daemons {
namespace {

struct GridFixture {
  sim::Engine engine{53};
  net::NetworkFabric fabric{engine};
  Ports ports;
  Timeouts timeouts;
  fs::SimFileSystem submit_fs{"submit0"};
  fs::SimFileSystem machine_fs{"exec0"};
  Matchmaker matchmaker{engine, fabric, "central", ports, timeouts};
  Startd startd{engine,
                fabric,
                machine_fs,
                "exec0",
                StartdConfig{},
                DisciplineConfig::scoped(),
                {"central", ports.matchmaker},
                ports,
                timeouts};

  std::unique_ptr<Schedd> make_schedd() {
    return std::make_unique<Schedd>(engine, fabric, submit_fs, "submit0",
                                    DisciplineConfig::scoped(),
                                    net::Address{"central", ports.matchmaker},
                                    ports, timeouts);
  }
};

TEST(Recovery, UnfinishedJobsSurviveAScheddCrash) {
  GridFixture grid;
  grid.matchmaker.boot();
  grid.startd.boot();

  // First incarnation: submit three jobs, crash before any can run.
  auto first = grid.make_schedd();
  std::vector<JobId> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(first->submit(pool::make_hello_job(SimTime::sec(5))));
  }
  first->shutdown();
  first.reset();  // the process is gone; only the spool remains

  // Second incarnation over the same filesystem.
  auto second = grid.make_schedd();
  EXPECT_EQ(second->recover_from_spool(), 3u);
  second->boot();
  ASSERT_TRUE(grid.engine.run_until([&] { return second->all_done(); },
                                    SimTime::hours(1)));
  for (const JobId id : ids) {
    const JobRecord* record = second->job(id);
    ASSERT_NE(record, nullptr);
    EXPECT_EQ(record->state, JobState::kCompleted);
  }
}

TEST(Recovery, FinalizedJobsAreNotResubmitted) {
  GridFixture grid;
  grid.matchmaker.boot();
  grid.startd.boot();

  auto first = grid.make_schedd();
  first->boot();
  const JobId done_id = first->submit(pool::make_hello_job(SimTime::sec(2)));
  ASSERT_TRUE(grid.engine.run_until([&] { return first->all_done(); },
                                    SimTime::hours(1)));
  const JobId pending_id =
      first->submit(pool::make_hello_job(SimTime::sec(2)));
  first->shutdown();
  first.reset();

  auto second = grid.make_schedd();
  EXPECT_EQ(second->recover_from_spool(), 1u);
  EXPECT_EQ(second->job(done_id), nullptr);       // finished: not revived
  ASSERT_NE(second->job(pending_id), nullptr);    // unfinished: revived
}

TEST(Recovery, RecoveredIdsDoNotCollideWithNewSubmissions) {
  GridFixture grid;
  auto first = grid.make_schedd();
  const JobId a = first->submit(pool::make_hello_job());
  const JobId b = first->submit(pool::make_hello_job());
  first.reset();

  auto second = grid.make_schedd();
  second->recover_from_spool();
  const JobId fresh = second->submit(pool::make_hello_job());
  EXPECT_NE(fresh.value(), a.value());
  EXPECT_NE(fresh.value(), b.value());
  EXPECT_GT(fresh.value(), b.value());
}

TEST(Recovery, CorruptJournalLinesAreSkipped) {
  GridFixture grid;
  auto first = grid.make_schedd();
  (void)first->submit(pool::make_hello_job());
  first.reset();
  // Vandalize the journal with garbage and torn lines.
  {
    Result<fs::FileHandle> h =
        grid.submit_fs.open("/spool/journal.log", fs::OpenMode::kAppend);
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(h.value().write("SUBMIT not-a-number [broken\n").ok());
    ASSERT_TRUE(h.value().write("GARBAGE LINE\n").ok());
    ASSERT_TRUE(h.value().write("SUBMIT 77\n").ok());  // torn: no ad
  }
  auto second = grid.make_schedd();
  EXPECT_EQ(second->recover_from_spool(), 1u);  // only the real one
}

TEST(Recovery, EmptySpoolRecoversNothing) {
  GridFixture grid;
  auto schedd = grid.make_schedd();
  EXPECT_EQ(schedd->recover_from_spool(), 0u);
}

TEST(Recovery, ProgramContentSurvivesTheRoundTrip) {
  GridFixture grid;
  auto first = grid.make_schedd();
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("Precious")
                    .compute(SimTime::sec(9))
                    .alloc(123)
                    .exit(5)
                    .build();
  job.owner = "alice";
  job.output_files = {"x.dat"};
  const JobId id = first->submit(std::move(job));
  first.reset();

  auto second = grid.make_schedd();
  ASSERT_EQ(second->recover_from_spool(), 1u);
  const JobRecord* record = second->job(id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->description.owner, "alice");
  EXPECT_EQ(record->description.program.main_class, "Precious");
  ASSERT_EQ(record->description.program.ops.size(), 3u);
  EXPECT_EQ(record->description.output_files,
            (std::vector<std::string>{"x.dat"}));
  EXPECT_TRUE(record->description.program.verifies());
}

}  // namespace
}  // namespace esg::daemons
