// Tests for implicit errors and the end-to-end layer (§5).
#include <gtest/gtest.h>

#include "pool/pool.hpp"
#include "pool/reliable.hpp"
#include "pool/workload.hpp"

namespace esg::pool {
namespace {

daemons::JobDescription producing_job() {
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("producer")
                    .compute(SimTime::sec(5))
                    .open_write("answer.dat", 0)
                    .write(0, 256)
                    .close_stream(0)
                    .build();
  job.output_files = {"answer.dat"};
  return job;
}

TEST(SilentCorruption, FsFlipsBytesWithoutReportingErrors) {
  fs::SimFileSystem fs("host");
  fs.set_silent_corruption_rate(1.0, Rng(9));
  const std::string payload(256, 'A');
  ASSERT_TRUE(fs.write_file("/f", payload).ok());
  Result<std::string> r = fs.read_file("/f");
  ASSERT_TRUE(r.ok());              // presented as valid...
  EXPECT_NE(r.value(), payload);    // ...but false: the implicit error
  EXPECT_GE(fs.corruptions_injected(), 1u);
  // The stored data itself is intact: only the read path lies.
  fs.set_silent_corruption_rate(0.0, Rng(9));
  EXPECT_EQ(fs.read_file("/f").value(), payload);
}

TEST(SilentCorruption, SmallMetadataReadsAreSpared) {
  fs::SimFileSystem fs("host");
  fs.set_silent_corruption_rate(1.0, Rng(9));
  ASSERT_TRUE(fs.write_file("/cookie", "tiny-secret").ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fs.read_file("/cookie").value(), "tiny-secret");
  }
}

TEST(SilentCorruption, ZeroRateNeverCorrupts) {
  fs::SimFileSystem fs("host");
  ASSERT_TRUE(fs.write_file("/f", std::string(1024, 'x')).ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fs.read_file("/f").value(), std::string(1024, 'x'));
  }
  EXPECT_EQ(fs.corruptions_injected(), 0u);
}

TEST(Reliable, SingleCopyDeliversCorruptedOutputUnnoticed) {
  // The grid works "correctly" — no component ever sees an error — yet the
  // user receives wrong bytes. This is why the end-to-end layer exists.
  PoolConfig config;
  config.seed = 83;
  config.discipline = daemons::DisciplineConfig::scoped();
  MachineSpec liar = MachineSpec::good("liar0");
  liar.silent_corruption_rate = 1.0;  // every read lies
  config.machines.push_back(liar);
  Pool pool(config);
  const std::vector<JobId> ids = submit_redundant(pool, producing_job(), 1);
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const ReliableResult r = vote_outputs(pool, ids, "answer.dat");
  ASSERT_TRUE(r.delivered);                    // nothing flagged anything
  EXPECT_FALSE(r.implicit_error_detected);     // one copy: undetectable
  EXPECT_NE(r.output, std::string(256, '\0'));  // ...and it is wrong
}

TEST(Reliable, ThreeCopiesDetectAndMaskMinorityCorruption) {
  PoolConfig config;
  config.seed = 84;
  config.discipline = daemons::DisciplineConfig::scoped();
  MachineSpec liar = MachineSpec::good("aaa_liar");
  liar.silent_corruption_rate = 1.0;
  config.machines.push_back(liar);
  config.machines.push_back(MachineSpec::good("zzz_honest0"));
  config.machines.push_back(MachineSpec::good("zzz_honest1"));
  Pool pool(config);
  const std::vector<JobId> ids = submit_redundant(pool, producing_job(), 3);
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(2)));
  const ReliableResult r = vote_outputs(pool, ids, "answer.dat");
  ASSERT_EQ(r.outputs_collected, 3);
  ASSERT_TRUE(r.delivered);
  // Whether detection fires depends on which machines the replicas landed
  // on; at minimum the delivered answer must be the honest one.
  EXPECT_EQ(r.output, std::string(256, '\0'));
  EXPECT_GE(r.agreeing, 2);
}

TEST(Reliable, AllHonestMachinesAgreeUnanimously) {
  PoolConfig config;
  config.seed = 85;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(MachineSpec::good("exec0"));
  config.machines.push_back(MachineSpec::good("exec1"));
  Pool pool(config);
  const std::vector<JobId> ids = submit_redundant(pool, producing_job(), 3);
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(2)));
  const ReliableResult r = vote_outputs(pool, ids, "answer.dat");
  ASSERT_TRUE(r.delivered);
  EXPECT_FALSE(r.implicit_error_detected);
  EXPECT_EQ(r.agreeing, 3);
  EXPECT_EQ(r.output, std::string(256, '\0'));
}

TEST(Reliable, InconclusiveVoteSurfacesScopedProgramError) {
  // Every replica lands on a liar, each read flips a different byte, and
  // the vote splits 1-1: detected but unmaskable. The regression under
  // test: the inconclusive vote must surface as a *scoped error* — program
  // scope, caused by the job-scope disagreement — not as a bare failed
  // result, so attribution oracles can see the condition.
  PoolConfig config;
  config.seed = 87;
  config.discipline = daemons::DisciplineConfig::scoped();
  MachineSpec liar0 = MachineSpec::good("liar0");
  liar0.silent_corruption_rate = 1.0;
  MachineSpec liar1 = MachineSpec::good("liar1");
  liar1.silent_corruption_rate = 1.0;
  config.machines.push_back(liar0);
  config.machines.push_back(liar1);
  Pool pool(config);
  const std::vector<JobId> ids = submit_redundant(pool, producing_job(), 2);
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const ReliableResult r = vote_outputs(pool, ids, "answer.dat");
  ASSERT_EQ(r.outputs_collected, 2);
  ASSERT_TRUE(r.no_majority);
  EXPECT_FALSE(r.delivered);
  ASSERT_TRUE(r.error.has_value());
  EXPECT_EQ(r.error->scope(), ErrorScope::kProgram);
  ASSERT_NE(r.error->cause(), nullptr);
  EXPECT_EQ(r.error->cause()->scope(), ErrorScope::kJob);
}

TEST(Reliable, MissingOutputsAreCountedNotFatal) {
  PoolConfig config;
  config.seed = 86;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(MachineSpec::good("exec0"));
  Pool pool(config);
  // A job that never writes its declared output.
  daemons::JobDescription lazy;
  lazy.program = jvm::ProgramBuilder("lazy").compute(SimTime::sec(1)).build();
  lazy.output_files = {"answer.dat"};
  const std::vector<JobId> ids = submit_redundant(pool, lazy, 2);
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const ReliableResult r = vote_outputs(pool, ids, "answer.dat");
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.outputs_collected, 0);
}

}  // namespace
}  // namespace esg::pool
