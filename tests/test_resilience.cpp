// Tests for the resilience-pattern catalog: the Strategy interface, the
// per-strategy budget/backoff behavior, and the PolicyTable's
// most-specific-first lookup with its honest Surface fallback.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "resilience/pattern.hpp"
#include "resilience/policy.hpp"
#include "resilience/strategy.hpp"

namespace esg::resilience {
namespace {

ErrorSite env_site(int attempts, int consecutive = 1) {
  ErrorSite site;
  site.scope = ErrorScope::kRemoteResource;
  site.kind = ErrorKind::kIoError;
  site.job = 7;
  site.machine = "exec0";
  site.attempts = attempts;
  site.consecutive_failures = consecutive;
  return site;
}

TEST(Patterns, NamesRoundTripAndGarbageIsRejected) {
  for (const PatternKind kind : kAllPatterns) {
    EXPECT_EQ(parse_pattern(pattern_name(kind)), kind);
  }
  EXPECT_FALSE(parse_pattern("").has_value());
  EXPECT_FALSE(parse_pattern("retry-everywhere").has_value());
}

TEST(Strategies, BudgetExhaustionReturnsTheJobTruthfully) {
  Tuning tuning;
  tuning.max_attempts = 3;
  const StrategyRegistry registry(tuning);
  // Every rescheduling strategy stops rescheduling at the budget; only
  // Surface (which never reschedules) has no budget to exhaust.
  for (const PatternKind kind :
       {PatternKind::kRetry, PatternKind::kRetryElsewhere,
        PatternKind::kCheckpointRestart, PatternKind::kMigrate,
        PatternKind::kReplicate, PatternKind::kAvoid}) {
    const Decision under = registry.at(kind).decide(env_site(2), nullptr);
    EXPECT_EQ(under.action, RecoveryAction::kReschedule)
        << pattern_name(kind);
    EXPECT_FALSE(under.budget_exhausted) << pattern_name(kind);
    const Decision spent = registry.at(kind).decide(env_site(3), nullptr);
    EXPECT_EQ(spent.action, RecoveryAction::kDeliverUnexecutable)
        << pattern_name(kind);
    EXPECT_TRUE(spent.budget_exhausted) << pattern_name(kind);
  }
}

TEST(Strategies, BackoffDoublesPerConsecutiveFailureAndCaps) {
  Tuning tuning;
  tuning.base_delay = SimTime::sec(2);
  tuning.max_backoff = SimTime::sec(30);
  const StrategyRegistry registry(tuning);
  const Strategy& retry = registry.at(PatternKind::kRetry);
  EXPECT_EQ(retry.decide(env_site(1, 1), nullptr).delay, SimTime::sec(2));
  EXPECT_EQ(retry.decide(env_site(2, 2), nullptr).delay, SimTime::sec(4));
  EXPECT_EQ(retry.decide(env_site(3, 3), nullptr).delay, SimTime::sec(8));
  EXPECT_EQ(retry.decide(env_site(4, 4), nullptr).delay, SimTime::sec(16));
  // 2s * 2^4 = 32s exceeds the cap; the schedule clamps.
  EXPECT_EQ(retry.decide(env_site(5, 5), nullptr).delay, SimTime::sec(30));
  EXPECT_EQ(retry.decide(env_site(9, 9), nullptr).delay, SimTime::sec(30));
}

TEST(Strategies, JitterIsDeterministicBoundedAndOptIn) {
  Tuning plain;
  Tuning jittered = plain;
  jittered.jitter = true;
  const StrategyRegistry without(plain);
  const StrategyRegistry with(jittered);
  const ErrorSite site = env_site(1, 3);
  const SimTime base =
      without.at(PatternKind::kRetry).decide(site, nullptr).delay;

  // Identical pinned streams draw identical delays: the scorecard's
  // byte-determinism rests on this.
  Rng a = Rng(42).fork(rng_streams::retry_jitter("schedd0"));
  Rng b = Rng(42).fork(rng_streams::retry_jitter("schedd0"));
  const SimTime da = with.at(PatternKind::kRetry).decide(site, &a).delay;
  const SimTime db = with.at(PatternKind::kRetry).decide(site, &b).delay;
  EXPECT_EQ(da, db);
  // U[0.5, 1.5) of the doubled schedule, never past the ceiling.
  EXPECT_GE(da, base * 0.5);
  EXPECT_LT(da, base * 1.5);
  EXPECT_LE(da, jittered.max_backoff);

  // Without the tuning knob the stream is not consumed: a jitter-less
  // strategy handed a stream must not perturb it.
  Rng untouched = Rng(42).fork(rng_streams::retry_jitter("schedd0"));
  Rng reference = Rng(42).fork(rng_streams::retry_jitter("schedd0"));
  (void)without.at(PatternKind::kRetry).decide(site, &untouched);
  EXPECT_EQ(untouched.next_u64(), reference.next_u64());
}

TEST(Strategies, ExclusionMatchesTheCatalog) {
  const StrategyRegistry registry;
  const ErrorSite site = env_site(1);
  EXPECT_FALSE(
      registry.at(PatternKind::kRetry).decide(site, nullptr).exclude_machine);
  EXPECT_TRUE(registry.at(PatternKind::kRetryElsewhere)
                  .decide(site, nullptr)
                  .exclude_machine);
  EXPECT_TRUE(
      registry.at(PatternKind::kMigrate).decide(site, nullptr).exclude_machine);
  // No machine to exclude, nothing excluded.
  ErrorSite anonymous = site;
  anonymous.machine.clear();
  EXPECT_FALSE(registry.at(PatternKind::kRetryElsewhere)
                   .decide(anonymous, nullptr)
                   .exclude_machine);
}

TEST(Strategies, SurfaceAndReplicateRefuseToLieAboutProgramResults) {
  const StrategyRegistry registry;
  ErrorSite program = env_site(1);
  program.scope = ErrorScope::kProgram;
  program.kind = ErrorKind::kArrayIndexOutOfBounds;
  program.program_result = true;
  for (const PatternKind kind :
       {PatternKind::kSurface, PatternKind::kReplicate}) {
    const Decision decision = registry.at(kind).decide(program, nullptr);
    EXPECT_EQ(decision.action, RecoveryAction::kDeliverResult)
        << pattern_name(kind);
  }
  // Surface on a retryable environment condition still refuses to recover:
  // the job goes back to the user, truthfully, as unexecutable.
  const Decision env = registry.at(PatternKind::kSurface)
                           .decide(env_site(1), nullptr);
  EXPECT_EQ(env.action, RecoveryAction::kDeliverUnexecutable);
}

TEST(PolicyTable, UnboundSitesFallBackToSurface) {
  const PolicyTable empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.lookup(ErrorScope::kRemoteResource, ErrorKind::kIoError),
            PatternKind::kSurface);
  EXPECT_EQ(empty.lookup(ErrorScope::kProgram, ErrorKind::kNullPointer),
            PatternKind::kSurface);
}

TEST(PolicyTable, MostSpecificBindingWins) {
  PolicyTable table;
  table.bind_default(PatternKind::kRetry)
      .bind(ErrorScope::kRemoteResource, PatternKind::kRetryElsewhere)
      .bind(ErrorScope::kRemoteResource, ErrorKind::kOutOfMemory,
            PatternKind::kAvoid);
  EXPECT_EQ(table.lookup(ErrorScope::kRemoteResource, ErrorKind::kOutOfMemory),
            PatternKind::kAvoid);
  EXPECT_EQ(table.lookup(ErrorScope::kRemoteResource, ErrorKind::kIoError),
            PatternKind::kRetryElsewhere);
  EXPECT_EQ(table.lookup(ErrorScope::kNetwork, ErrorKind::kConnectionLost),
            PatternKind::kRetry);
  EXPECT_TRUE(table.uses(PatternKind::kAvoid));
  EXPECT_FALSE(table.uses(PatternKind::kReplicate));
}

TEST(PolicyTable, ClassicTableMatchesTheScheddDispositions) {
  const PolicyTable classic = PolicyTable::classic();
  EXPECT_EQ(classic.lookup(ErrorScope::kProgram, ErrorKind::kNullPointer),
            PatternKind::kSurface);
  EXPECT_EQ(classic.lookup(ErrorScope::kJob, ErrorKind::kCorruptImage),
            PatternKind::kSurface);
  EXPECT_EQ(classic.lookup(ErrorScope::kCluster, ErrorKind::kIoError),
            PatternKind::kSurface);
  EXPECT_EQ(classic.lookup(ErrorScope::kPool, ErrorKind::kIoError),
            PatternKind::kSurface);
  EXPECT_EQ(classic.lookup(ErrorScope::kRemoteResource, ErrorKind::kIoError),
            PatternKind::kRetry);
  EXPECT_EQ(classic.lookup(ErrorScope::kNetwork, ErrorKind::kConnectionLost),
            PatternKind::kRetry);
}

}  // namespace
}  // namespace esg::resilience
