// Unit tests for filesystem retry policies (§5 NFS hard/soft/deadline).
#include <gtest/gtest.h>

#include "fs/retry.hpp"

namespace esg::fs {
namespace {

struct RetryFixture {
  sim::Engine engine{19};
  SimFileSystem fs{"submit0"};
  ScopeEscalator escalator = ScopeEscalator::grid_defaults();

  RetryFixture() {
    fs.add_mount("/home", 0);
    EXPECT_TRUE(fs.write_file("/home/data", "payload").ok());
  }

  PolicyOutcome read(const RetryPolicy& policy, SimTime outage,
                     SimTime limit = SimTime::hours(5)) {
    if (outage > SimTime::zero()) {
      fs.set_mount_online("/home", false);
      engine.schedule(outage, [this] { fs.set_mount_online("/home", true); });
    }
    PolicyOutcome out;
    bool done = false;
    read_with_policy(engine, fs, "/home/data", policy, escalator,
                     [&](PolicyOutcome o) {
                       out = std::move(o);
                       done = true;
                     });
    engine.run(limit);
    EXPECT_TRUE(done) << "policy never completed";
    return out;
  }
};

TEST(Retry, ImmediateSuccessNeedsOneAttempt) {
  RetryFixture f;
  const PolicyOutcome out = f.read(RetryPolicy::hard(), SimTime::zero());
  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.data, "payload");
}

TEST(Retry, HardWaitsOutAnyOutage) {
  RetryFixture f;
  const PolicyOutcome out = f.read(RetryPolicy::hard(), SimTime::minutes(10));
  EXPECT_TRUE(out.succeeded);
  EXPECT_GE(out.latency, SimTime::minutes(10));
  EXPECT_GT(out.attempts, 100);  // one per second for ten minutes
}

TEST(Retry, SoftGivesUpAfterBudget) {
  RetryFixture f;
  const PolicyOutcome out =
      f.read(RetryPolicy::soft(3, SimTime::sec(1)), SimTime::minutes(10));
  ASSERT_FALSE(out.succeeded);
  EXPECT_EQ(out.attempts, 4);  // initial try + 3 retries
  ASSERT_TRUE(out.error.has_value());
  EXPECT_EQ(out.error->kind(), ErrorKind::kConnectionTimedOut);
  EXPECT_EQ(out.error->scope(), ErrorScope::kNetwork);
  // The true cause is preserved underneath.
  ASSERT_NE(out.error->cause(), nullptr);
  EXPECT_EQ(out.error->cause()->kind(), ErrorKind::kMountOffline);
}

TEST(Retry, SoftSucceedsWithinBudget) {
  RetryFixture f;
  const PolicyOutcome out =
      f.read(RetryPolicy::soft(5, SimTime::sec(1)), SimTime::sec(3));
  EXPECT_TRUE(out.succeeded);
}

TEST(Retry, DeadlineSurvivesShortOutage) {
  RetryFixture f;
  const PolicyOutcome out = f.read(
      RetryPolicy::with_deadline(SimTime::minutes(1), SimTime::sec(1)),
      SimTime::sec(20));
  EXPECT_TRUE(out.succeeded);
  EXPECT_GE(out.latency, SimTime::sec(20));
}

TEST(Retry, DeadlineEscalatesScopeOnExpiry) {
  RetryFixture f;
  const PolicyOutcome out = f.read(
      RetryPolicy::with_deadline(SimTime::minutes(1), SimTime::sec(2)),
      SimTime::hours(1));
  ASSERT_FALSE(out.succeeded);
  ASSERT_TRUE(out.error.has_value());
  // 60s of persistence crosses the 30s network->remote-resource rule.
  EXPECT_EQ(out.error->scope(), ErrorScope::kRemoteResource);
  EXPECT_GE(out.latency, SimTime::minutes(1));
}

TEST(Retry, NonRetryableErrorsSurfaceImmediately) {
  RetryFixture f;
  PolicyOutcome out;
  bool done = false;
  read_with_policy(f.engine, f.fs, "/home/never_created",
                   RetryPolicy::hard(), f.escalator, [&](PolicyOutcome o) {
                     out = std::move(o);
                     done = true;
                   });
  f.engine.run(SimTime::minutes(1));
  ASSERT_TRUE(done);
  ASSERT_FALSE(out.succeeded);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.error->kind(), ErrorKind::kFileNotFound);
}

TEST(Retry, IsRetryableClassification) {
  EXPECT_TRUE(is_retryable(Error(ErrorKind::kMountOffline)));
  EXPECT_TRUE(is_retryable(Error(ErrorKind::kIoError)));
  EXPECT_TRUE(is_retryable(Error(ErrorKind::kConnectionLost)));
  EXPECT_FALSE(is_retryable(Error(ErrorKind::kFileNotFound)));
  EXPECT_FALSE(is_retryable(Error(ErrorKind::kAccessDenied)));
  EXPECT_FALSE(is_retryable(Error(ErrorKind::kDiskFull)));
}

TEST(Retry, TransientIoErrorsAreAlsoRetried) {
  RetryFixture f;
  // 60% transient failure rate: hard mount grinds through it.
  f.fs.set_transient_fault_rate(0.6, Rng(5));
  const PolicyOutcome out = f.read(RetryPolicy::hard(), SimTime::zero());
  EXPECT_TRUE(out.succeeded);
}

// Parameterized sweep: for every policy, a zero-length outage must succeed
// on the first attempt with zero latency.
class PolicySweep : public ::testing::TestWithParam<RetryPolicy::Mode> {};

TEST_P(PolicySweep, NoFaultNoLatency) {
  RetryFixture f;
  RetryPolicy policy;
  policy.mode = GetParam();
  const PolicyOutcome out = f.read(policy, SimTime::zero());
  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.latency, SimTime::zero());
}

INSTANTIATE_TEST_SUITE_P(AllModes, PolicySweep,
                         ::testing::Values(RetryPolicy::Mode::kHard,
                                           RetryPolicy::Mode::kSoft,
                                           RetryPolicy::Mode::kDeadline));

}  // namespace
}  // namespace esg::fs
