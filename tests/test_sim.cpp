// Unit tests for the discrete-event engine, RNG, and metrics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"

namespace esg::sim {
namespace {

TEST(Engine, EventsRunInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(SimTime::sec(3), [&] { order.push_back(3); });
  engine.schedule(SimTime::sec(1), [&] { order.push_back(1); });
  engine.schedule(SimTime::sec(2), [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), SimTime::sec(3));
}

TEST(Engine, EqualTimesRunInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule(SimTime::sec(1), [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, NestedSchedulingAdvancesClock) {
  Engine engine;
  SimTime inner_time;
  engine.schedule(SimTime::sec(1), [&] {
    engine.schedule(SimTime::sec(2), [&] { inner_time = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(inner_time, SimTime::sec(3));
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool ran = false;
  TimerHandle handle = engine.schedule(SimTime::sec(1), [&] { ran = true; });
  handle.cancel();
  engine.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, RunUntilPredicate) {
  Engine engine;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    engine.schedule(SimTime::sec(1), tick);
  };
  engine.schedule(SimTime::sec(1), tick);
  const bool reached = engine.run_until([&] { return count >= 5; },
                                        SimTime::hours(1));
  EXPECT_TRUE(reached);
  EXPECT_EQ(count, 5);
}

TEST(Engine, RunRespectsLimit) {
  Engine engine;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    engine.schedule(SimTime::sec(10), tick);
  };
  engine.schedule(SimTime::sec(10), tick);
  engine.run(SimTime::sec(35));
  EXPECT_EQ(count, 3);
  EXPECT_EQ(engine.now(), SimTime::sec(35));
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine(123);
    std::vector<std::uint64_t> draws;
    for (int i = 0; i < 8; ++i) draws.push_back(engine.rng().next_u64());
    return draws;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const std::int64_t n = rng.uniform_int(3, 9);
    EXPECT_GE(n, 3);
    EXPECT_LE(n, 9);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ForkByLabelIsStable) {
  Rng a(99);
  Rng b(99);
  EXPECT_EQ(a.fork("schedd").next_u64(), b.fork("schedd").next_u64());
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(13);
  std::vector<double> weights{0, 10, 0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(Metrics, HistogramQuantiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.observe(i);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 100);
  EXPECT_NEAR(h.quantile(0.5), 50.5, 0.01);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Metrics, EmptyHistogramIsSafe) {
  // The documented empty-case contract: every statistic is exactly 0 (not
  // NaN, not an infinity sentinel), and empty() is the discriminator.
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0);
  EXPECT_DOUBLE_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.quantile(0), 0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0);
  EXPECT_DOUBLE_EQ(h.quantile(1), 0);
  h.observe(7);
  EXPECT_FALSE(h.empty());
  EXPECT_DOUBLE_EQ(h.min(), 7);
  EXPECT_DOUBLE_EQ(h.max(), 7);
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.max(), 0);
}

TEST(Metrics, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("jobs.done").add(4);
  reg.gauge("pool-size").set(2.5);
  reg.histogram("latency").observe(1);
  reg.histogram("latency").observe(3);
  const std::string text = reg.prometheus_str();
  // Non [a-zA-Z0-9_:] characters must be mangled to '_'.
  EXPECT_NE(text.find("# TYPE jobs_done counter\njobs_done 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pool_size gauge\npool_size 2.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("latency_sum 4\n"), std::string::npos);
  EXPECT_NE(text.find("latency{quantile=\"0.5\"} 2\n"), std::string::npos);
}

TEST(Metrics, RegistryNamesAreStable) {
  MetricsRegistry reg;
  reg.counter("jobs").add(3);
  reg.counter("jobs").add(2);
  EXPECT_EQ(reg.counter_value("jobs"), 5);
  EXPECT_EQ(reg.counter_value("absent"), 0);
}

TEST(SimTimeTest, ArithmeticAndFormat) {
  EXPECT_EQ(SimTime::sec(2) + SimTime::msec(500), SimTime::msec(2500));
  EXPECT_EQ((SimTime::sec(10) - SimTime::sec(4)).as_sec(), 6.0);
  EXPECT_EQ(SimTime::sec(1).str(), "1.000s");
  EXPECT_LT(SimTime::msec(1), SimTime::sec(1));
}

}  // namespace
}  // namespace esg::sim

namespace esg::sim {
namespace {

TEST(Engine, EventCapStopsRunawayLoops) {
  Engine engine;
  engine.set_event_cap(100);
  int count = 0;
  std::function<void()> forever = [&] {
    ++count;
    engine.schedule(SimTime::usec(1), forever);
  };
  engine.schedule(SimTime::usec(1), forever);
  engine.run();
  EXPECT_LE(count, 101);
}

TEST(Engine, StepExecutesExactlyOne) {
  Engine engine;
  int count = 0;
  engine.schedule(SimTime::sec(1), [&] { ++count; });
  engine.schedule(SimTime::sec(2), [&] { ++count; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(engine.step());
}

TEST(Engine, PendingCountsUncancelledEvents) {
  Engine engine;
  TimerHandle h1 = engine.schedule(SimTime::sec(1), [] {});
  engine.schedule(SimTime::sec(2), [] {});
  EXPECT_EQ(engine.pending(), 2u);
  h1.cancel();
  // Cancelled events stay queued but do not execute.
  engine.run();
  EXPECT_EQ(engine.executed(), 1u);
}

TEST(CallableArena, RecyclesBlocksWithoutTouchingTheHeap) {
  CallableArena arena;
  void* a = arena.allocate(48, 8);
  EXPECT_EQ(arena.live_blocks(), 1u);
  arena.deallocate(a, 48, 8);
  EXPECT_EQ(arena.live_blocks(), 0u);
  // Same size class → the freelist hands the identical block back.
  void* b = arena.allocate(40, 8);
  EXPECT_EQ(b, a);
  arena.deallocate(b, 40, 8);
  EXPECT_EQ(arena.oversize_allocs(), 0u);
  EXPECT_GT(arena.slab_bytes(), 0u);
}

TEST(CallableArena, OversizeCallablesFallBackToTheHeap) {
  CallableArena arena;
  void* big = arena.allocate(4096, 8);
  EXPECT_EQ(arena.oversize_allocs(), 1u);
  EXPECT_EQ(arena.live_blocks(), 0u);  // not arena-tracked
  arena.deallocate(big, 4096, 8);
}

TEST(CallableArena, TaskRunsDestroysAndReleases) {
  CallableArena arena;
  int runs = 0;
  auto counted = std::make_shared<int>(7);
  {
    Task task(arena, [&runs, counted] { runs += *counted; });
    EXPECT_EQ(counted.use_count(), 2);
    EXPECT_EQ(arena.live_blocks(), 1u);
    Task moved = std::move(task);
    EXPECT_FALSE(static_cast<bool>(task));
    moved();
    EXPECT_EQ(runs, 7);
  }
  // Both handles dead: the capture was destroyed exactly once and the
  // block went back to the freelist.
  EXPECT_EQ(counted.use_count(), 1);
  EXPECT_EQ(arena.live_blocks(), 0u);
}

TEST(Engine, QueueDrainReturnsEveryBlockToTheArena) {
  Engine engine;
  for (int i = 0; i < 100; ++i) {
    engine.schedule(SimTime::msec(i), [] {});
  }
  EXPECT_EQ(engine.arena().live_blocks(), 100u);
  engine.run();
  EXPECT_EQ(engine.arena().live_blocks(), 0u);
  EXPECT_EQ(engine.arena().oversize_allocs(), 0u);
}

}  // namespace
}  // namespace esg::sim
