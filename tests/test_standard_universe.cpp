// The Standard universe: re-linked binaries with remote I/O and
// transparent checkpointing (§2.1), but no wrapper — results are exit
// codes only.
#include <gtest/gtest.h>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

namespace esg::pool {
namespace {

daemons::JobDescription standard_job(jvm::JobProgram program) {
  daemons::JobDescription job;
  job.universe = daemons::Universe::kStandard;
  job.requirements = "true";  // no JVM needed
  job.program = std::move(program);
  return job;
}

TEST(StandardUniverse, RunsWithRemoteIoOnMachinesWithoutJava) {
  PoolConfig config;
  config.seed = 91;
  config.discipline = daemons::DisciplineConfig::scoped();
  MachineSpec nojava = MachineSpec::good("nojava0");
  nojava.startd.owner_asserts_java = false;
  nojava.startd.jvm.installed = false;  // truly no JVM anywhere
  config.machines.push_back(nojava);
  Pool pool(config);
  stage_workload_inputs(pool);

  const JobId id = pool.submit(standard_job(
      jvm::ProgramBuilder("relinked")
          .open_read("/home/data/input.dat", 0)  // remote syscall via shadow
          .read(0, 2048)
          .close_stream(0)
          .compute(SimTime::sec(5))
          .open_write("/home/data/out.bin", 1)
          .write(1, 512)
          .close_stream(1)
          .build()));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  EXPECT_EQ(record->state, daemons::JobState::kCompleted);
  EXPECT_EQ(pool.submit_fs().stat("/home/data/out.bin").value().size, 512u);
}

TEST(StandardUniverse, CheckpointsEvenWhenDisciplineDisablesThem) {
  // Checkpointing is the universe's defining feature, not a config knob.
  PoolConfig config;
  config.seed = 92;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.checkpointing = false;  // java universe would not ckpt
  config.discipline.checkpoint_interval = SimTime::minutes(1);
  config.machines.push_back(MachineSpec::good("aaa_desk"));
  config.machines.push_back(MachineSpec::good("zzz_farm"));
  Pool pool(config);

  jvm::ProgramBuilder builder("longhaul");
  for (int i = 0; i < 10; ++i) builder.compute(SimTime::minutes(2));
  const JobId id = pool.submit(standard_job(builder.build()));
  pool.boot();
  pool.engine().schedule(SimTime::minutes(11), [&pool] {
    pool.startd("aaa_desk")->set_owner_active(true);
    pool.startd("zzz_farm")->set_owner_active(false);
  });
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(3)));
  ASSERT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
  double total_cpu = 0;
  for (const auto& truth : pool.ground_truth().entries()) {
    total_cpu += truth.cpu_seconds;
  }
  // Resumed, not restarted: total compute stays near the program's 20 min.
  EXPECT_LT(total_cpu, 26 * 60.0);
}

TEST(StandardUniverse, ExitCodeOnlyEvenUnderScopedDiscipline) {
  // No wrapper exists for native binaries: an environmental error inside
  // the program surfaces as exit code 1 (the Figure 4 conflation), even
  // though the rest of the grid runs the redesigned discipline.
  PoolConfig config;
  config.seed = 93;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(MachineSpec::good("exec0"));
  Pool pool(config);
  // The program reads a remote file whose home filesystem is permanently
  // offline: concise library escapes, but nothing reads the scope.
  pool.submit(standard_job(jvm::ProgramBuilder("reader")
                               .open_read("/home/data/gone", 0)
                               .read(0, 64)
                               .build()));
  pool.boot();
  pool.submit_fs().set_mount_online("/home", false);
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  const PoolReport report = pool.report();
  // The incidental condition reached the user as a program result.
  EXPECT_EQ(report.user_incidental_exposures, 1);
}

TEST(StandardUniverse, SummaryAdRoundTripsUniverse) {
  daemons::JobDescription job = standard_job(
      jvm::ProgramBuilder("x").compute(SimTime::sec(1)).build());
  job.id = JobId{4};
  Result<classad::ClassAd> ad = job.to_full_ad();
  ASSERT_TRUE(ad.ok());
  EXPECT_EQ(ad.value().eval_string("JobUniverse"), "standard");
  Result<daemons::JobDescription> back =
      daemons::JobDescription::from_ad(ad.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().universe, daemons::Universe::kStandard);
}

}  // namespace
}  // namespace esg::pool
