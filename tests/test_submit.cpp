// Tests for the condor_submit-style submit description language.
#include <gtest/gtest.h>

#include "pool/pool.hpp"
#include "pool/submit.hpp"
#include "pool/workload.hpp"

namespace esg::pool {
namespace {

struct SubmitFixture {
  fs::SimFileSystem fs{"submit0"};

  SubmitFixture() {
    const jvm::JobProgram program = jvm::ProgramBuilder("Sim")
                                        .compute(SimTime::sec(10))
                                        .open_write("out.dat", 0)
                                        .write(0, 64)
                                        .close_stream(0)
                                        .build();
    EXPECT_TRUE(stage_program(fs, "/home/alice/sim.prog", program).ok());
  }
};

TEST(SubmitFile, FullDescriptionParses) {
  SubmitFixture f;
  ASSERT_TRUE(f.fs.write_file("/home/alice/a.dat", "A").ok());
  const char* text = R"(
    # my simulation
    universe              = java
    executable            = /home/alice/sim.prog
    requirements          = TARGET.HasJava =?= true && TARGET.Memory >= 64
    rank                  = TARGET.Memory
    owner                 = alice
    image_size_mb         = 32
    transfer_input_files  = /home/alice/a.dat
    transfer_output_files = out.dat
    queue 3
  )";
  Result<std::vector<daemons::JobDescription>> jobs =
      parse_submit_text(f.fs, text);
  ASSERT_TRUE(jobs.ok()) << jobs.error().str();
  ASSERT_EQ(jobs.value().size(), 3u);
  const daemons::JobDescription& job = jobs.value().front();
  EXPECT_EQ(job.owner, "alice");
  EXPECT_EQ(job.universe, daemons::Universe::kJava);
  EXPECT_EQ(job.image_size_mb, 32);
  EXPECT_EQ(job.program.main_class, "Sim");
  EXPECT_EQ(job.input_files, (std::vector<std::string>{"/home/alice/a.dat"}));
  EXPECT_EQ(job.output_files, (std::vector<std::string>{"out.dat"}));
}

TEST(SubmitFile, MultipleQueueStatementsVaryThePrototype) {
  SubmitFixture f;
  const char* text = R"(
    executable = /home/alice/sim.prog
    owner = alice
    queue 1
    owner = bob
    queue 2
  )";
  Result<std::vector<daemons::JobDescription>> jobs =
      parse_submit_text(f.fs, text);
  ASSERT_TRUE(jobs.ok());
  ASSERT_EQ(jobs.value().size(), 3u);
  EXPECT_EQ(jobs.value()[0].owner, "alice");
  EXPECT_EQ(jobs.value()[1].owner, "bob");
  EXPECT_EQ(jobs.value()[2].owner, "bob");
}

TEST(SubmitFile, VanillaDefaultsDropJavaRequirement) {
  SubmitFixture f;
  const char* text =
      "universe = vanilla\nexecutable = /home/alice/sim.prog\nqueue\n";
  Result<std::vector<daemons::JobDescription>> jobs =
      parse_submit_text(f.fs, text);
  ASSERT_TRUE(jobs.ok());
  EXPECT_EQ(jobs.value()[0].universe, daemons::Universe::kVanilla);
  EXPECT_EQ(jobs.value()[0].requirements, "true");
}

TEST(SubmitFile, Rejections) {
  SubmitFixture f;
  // Unknown key (a typo must not be silently ignored).
  EXPECT_FALSE(parse_submit_text(
                   f.fs,
                   "executable = /home/alice/sim.prog\nrankk = 1\nqueue\n")
                   .ok());
  // Missing executable.
  EXPECT_FALSE(parse_submit_text(f.fs, "owner = x\nqueue\n").ok());
  // No queue statement.
  EXPECT_FALSE(
      parse_submit_text(f.fs, "executable = /home/alice/sim.prog\n").ok());
  // Nonexistent executable.
  EXPECT_FALSE(
      parse_submit_text(f.fs, "executable = /no/such\nqueue\n").ok());
  // Bad queue count.
  EXPECT_FALSE(parse_submit_text(
                   f.fs, "executable = /home/alice/sim.prog\nqueue -2\n")
                   .ok());
  // Unknown universe.
  EXPECT_FALSE(
      parse_submit_text(
          f.fs, "universe = pvm\nexecutable = /home/alice/sim.prog\nqueue\n")
          .ok());
  // Unparsable requirements expression.
  EXPECT_FALSE(parse_submit_text(f.fs,
                                 "executable = /home/alice/sim.prog\n"
                                 "requirements = ((broken\nqueue\n")
                   .ok());
}

TEST(SubmitFile, GarbageExecutableRejectedAtSubmitTime) {
  SubmitFixture f;
  ASSERT_TRUE(f.fs.write_file("/home/alice/garbage", "op bogus x y").ok());
  Result<std::vector<daemons::JobDescription>> jobs = parse_submit_text(
      f.fs, "executable = /home/alice/garbage\nqueue\n");
  ASSERT_FALSE(jobs.ok());
  EXPECT_EQ(jobs.error().scope(), ErrorScope::kJob);
}

TEST(SubmitFile, EndToEndThroughThePool) {
  PoolConfig config;
  config.seed = 121;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.machines.push_back(MachineSpec::good("exec0"));
  config.machines.push_back(MachineSpec::good("exec1"));
  Pool pool(config);

  const jvm::JobProgram program = jvm::ProgramBuilder("Batch")
                                      .compute(SimTime::sec(5))
                                      .open_write("result.dat", 0)
                                      .write(0, 128)
                                      .close_stream(0)
                                      .build();
  ASSERT_TRUE(
      stage_program(pool.submit_fs(), "/home/user/batch.prog", program).ok());
  ASSERT_TRUE(pool.submit_fs()
                  .write_file("/home/user/batch.submit",
                              "executable = /home/user/batch.prog\n"
                              "transfer_output_files = result.dat\n"
                              "queue 4\n")
                  .ok());
  Result<std::vector<daemons::JobDescription>> jobs =
      parse_submit_file(pool.submit_fs(), "/home/user/batch.submit");
  ASSERT_TRUE(jobs.ok());
  std::vector<JobId> ids;
  for (auto& job : jobs.value()) ids.push_back(pool.submit(std::move(job)));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(1)));
  for (const JobId id : ids) {
    EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
    EXPECT_TRUE(pool.submit_fs().exists(
        "/out/job_" + std::to_string(id.value()) + "/result.dat"));
  }
}

}  // namespace
}  // namespace esg::pool
