// The sweep runner's central promise: per-cell isolation makes parallelism
// invisible. A cell's PoolReport and trace journal depend only on its
// PoolConfig and workload — not on which thread ran it, what ran next to
// it, or how many other pools were alive in the process at the time.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "daemons/config.hpp"
#include "pool/pool.hpp"
#include "pool/sweep.hpp"
#include "pool/workload.hpp"

namespace esg::pool {
namespace {

/// A cell with enough machinery to exercise real error paths: one
/// misconfigured machine in a scoped pool, a mixed workload, tracing on.
SweepCell make_cell(std::uint64_t seed, double fault_rate = 0.0) {
  SweepCell cell;
  cell.config.seed = seed;
  cell.config.trace = true;
  cell.config.discipline = daemons::DisciplineConfig::scoped();
  cell.config.discipline.schedd_avoidance = true;
  cell.config.machines.push_back(MachineSpec::misconfigured_java("bad0"));
  MachineSpec flaky = MachineSpec::good("good0");
  flaky.fs_fault_rate = fault_rate;
  cell.config.machines.push_back(std::move(flaky));
  cell.config.machines.push_back(MachineSpec::good("good1"));
  cell.label = "seed" + std::to_string(seed) + "/fault" +
               std::to_string(static_cast<int>(fault_rate * 100));
  cell.setup = [seed](Pool& pool) {
    stage_workload_inputs(pool);
    WorkloadOptions options;
    options.count = 8;
    options.mean_compute = SimTime::sec(5);
    options.remote_io_fraction = 0.25;
    options.program_error_fraction = 0.15;
    Rng rng(seed * 7919 + 17);
    for (auto& job : make_workload(options, rng)) {
      pool.submit(std::move(job));
    }
  };
  return cell;
}

/// The seed×fault-rate grid used by the cross-thread identity tests.
std::vector<SweepCell> make_grid(int seeds, const std::vector<double>& rates) {
  std::vector<SweepCell> cells;
  for (int s = 0; s < seeds; ++s) {
    for (const double rate : rates) {
      cells.push_back(make_cell(100 + static_cast<std::uint64_t>(s), rate));
    }
  }
  return cells;
}

/// Everything a cell is promised to reproduce, as one comparable string.
std::string fingerprint(const CellOutcome& cell) {
  return cell.report.str() + "|events=" + std::to_string(cell.engine_events) +
         "|spans=" + std::to_string(cell.trace_events) + "|" + cell.trace_dump;
}

TEST(SweepDeterminism, RepeatedSerialRunsAreByteIdentical) {
  std::vector<SweepCell> cells;
  cells.push_back(make_cell(7));
  cells.push_back(make_cell(11, 0.1));

  const SweepReport first = SweepRunner(1).run(cells);
  const SweepReport second = SweepRunner(1).run(cells);
  ASSERT_EQ(first.cells.size(), second.cells.size());
  for (std::size_t i = 0; i < first.cells.size(); ++i) {
    EXPECT_GT(first.cells[i].trace_events, 0u) << first.cells[i].label;
    EXPECT_EQ(fingerprint(first.cells[i]), fingerprint(second.cells[i]))
        << first.cells[i].label;
  }
}

TEST(SweepDeterminism, OneThreadAndEightThreadsAgreeOnEveryCell) {
  // The acceptance grid: 8 seeds x 4 fault rates = 32 cells, byte-identical
  // between a serial sweep and an 8-thread sweep.
  const std::vector<SweepCell> grid =
      make_grid(8, {0.0, 0.05, 0.1, 0.2});
  ASSERT_GE(grid.size(), 32u);

  const SweepReport serial = SweepRunner(1).run(grid);
  const SweepReport wide = SweepRunner(8).run(grid);
  ASSERT_EQ(serial.cells.size(), grid.size());
  ASSERT_EQ(wide.cells.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_TRUE(serial.cells[i].finished) << serial.cells[i].label;
    EXPECT_EQ(fingerprint(serial.cells[i]), fingerprint(wide.cells[i]))
        << serial.cells[i].label;
  }
}

TEST(SweepDeterminism, MergedDashboardIsByteIdenticalAcrossThreadCounts) {
  // The dashboards acceptance criterion: the sweep-wide merged error-flow
  // dump (cells folded in submission order) is byte-identical between a
  // serial run and an 8-thread run of the same grid.
  const std::vector<SweepCell> grid = make_grid(4, {0.0, 0.1});

  const SweepReport serial = SweepRunner(1).run(grid);
  const SweepReport wide = SweepRunner(8).run(grid);
  const std::string serial_json = serial.merged_dashboard_json("grid");
  EXPECT_FALSE(serial_json.empty());
  EXPECT_EQ(serial_json, wide.merged_dashboard_json("grid"));

  // The merged aggregate really carries flow: every cell traced, so the
  // fold has raised events and the per-cell sums match the merge.
  const obs::FlowAggregate merged = serial.merged_flow();
  EXPECT_GT(merged.count(obs::FlowDisposition::kRaised), 0u);
  std::uint64_t per_cell_events = 0;
  for (const CellOutcome& cell : serial.cells) {
    per_cell_events += cell.report.flow.events_seen;
  }
  EXPECT_EQ(merged.events_seen, per_cell_events);
}

TEST(SweepDeterminism, CoexistingPoolsDoNotPerturbEachOther) {
  // Reference: the cell run alone in a quiet process.
  const SweepCell cell = make_cell(23, 0.1);
  const CellOutcome alone = SweepRunner(1).run({cell}).cells.at(0);

  // Now two pools from the same config, alive simultaneously, with their
  // lifetimes interleaved: construct both, run the second, then the first,
  // then read both. With per-engine SimContexts neither can see the other.
  Pool a(cell.config);
  Pool b(cell.config);
  cell.setup(a);
  cell.setup(b);
  ASSERT_TRUE(b.run_until_done(cell.limit));
  ASSERT_TRUE(a.run_until_done(cell.limit));

  EXPECT_EQ(a.report().str(), alone.report.str());
  EXPECT_EQ(b.report().str(), alone.report.str());
  EXPECT_EQ(a.engine().executed(), alone.engine_events);
  EXPECT_EQ(b.engine().executed(), alone.engine_events);
  EXPECT_EQ(a.recorder().total_recorded(), alone.trace_events);
  EXPECT_EQ(b.recorder().total_recorded(), alone.trace_events);
}

TEST(SweepReportApi, LabelsDefaultAndFindWorks) {
  SweepCell unlabeled = make_cell(31);
  unlabeled.label.clear();
  const SweepReport sweep = SweepRunner(2).run({unlabeled, make_cell(37)});
  EXPECT_NE(sweep.find("seed31"), nullptr);
  EXPECT_NE(sweep.find("seed37/fault0"), nullptr);
  EXPECT_EQ(sweep.find("no-such-cell"), nullptr);
  EXPECT_FALSE(sweep.str().empty());
  EXPECT_LE(sweep.threads_used, 2u);
}

TEST(SweepReportApi, EmptySweepIsHarmless) {
  const SweepReport sweep = SweepRunner(4).run({});
  EXPECT_TRUE(sweep.cells.empty());
  EXPECT_FALSE(sweep.str().empty());
}

}  // namespace
}  // namespace esg::pool
