// Tests for the shadow's inactivity watchdog and the starter keepalive.
#include <gtest/gtest.h>

#include "pool/pool.hpp"
#include "pool/workload.hpp"

namespace esg::pool {
namespace {

TEST(Watchdog, LongQuietComputeSurvivesThanksToKeepalives) {
  PoolConfig config;
  config.seed = 3;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.job_watchdog = SimTime::minutes(12);
  config.timeouts.keepalive_interval = SimTime::minutes(5);
  config.machines.push_back(MachineSpec::good("exec0"));
  Pool pool(config);
  daemons::JobDescription job;
  // A full hour of silent compute: far beyond the watchdog, fine with
  // keepalives flowing.
  job.program = jvm::ProgramBuilder("quiet").compute(SimTime::hours(1)).build();
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(3)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  EXPECT_EQ(record->state, daemons::JobState::kCompleted);
  EXPECT_EQ(record->attempts.size(), 1u);
}

TEST(Watchdog, TrulySilentStarterIsAborted) {
  // Break keepalives by making them far rarer than the watchdog: a
  // genuinely hung execution site is then detected and the job retried.
  PoolConfig config;
  config.seed = 3;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.job_watchdog = SimTime::minutes(5);
  config.timeouts.keepalive_interval = SimTime::hours(10);
  config.machines.push_back(MachineSpec::good("exec0"));
  Pool pool(config);
  daemons::JobDescription job;
  job.program = jvm::ProgramBuilder("quiet").compute(SimTime::hours(1)).build();
  const JobId id = pool.submit(std::move(job));
  // The watchdog fires repeatedly; with only one machine the job keeps
  // being retried and never finishes within the horizon.
  EXPECT_FALSE(pool.run_until_done(SimTime::minutes(40)));
  const daemons::JobRecord* record = pool.schedd().job(id);
  ASSERT_FALSE(record->attempts.empty());
  const auto& summary = record->attempts.front().summary;
  ASSERT_FALSE(summary.have_program_result);
  ASSERT_TRUE(summary.environment_error.has_value());
  ASSERT_NE(summary.environment_error->label("watchdog"), nullptr);
}

TEST(Watchdog, RemoteIoTrafficAlsoCountsAsLife) {
  // A job doing steady remote I/O keeps the shadow busy serving it; the
  // watchdog must treat that as activity even without keepalives.
  PoolConfig config;
  config.seed = 3;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.job_watchdog = SimTime::minutes(3);
  config.timeouts.keepalive_interval = SimTime::hours(10);  // effectively off
  config.machines.push_back(MachineSpec::good("exec0"));
  Pool pool(config);
  stage_workload_inputs(pool);
  jvm::ProgramBuilder builder("reader");
  builder.open_read("/home/data/input.dat", 0);
  for (int i = 0; i < 30; ++i) {
    builder.compute(SimTime::minutes(2)).read(0, 512);
  }
  builder.close_stream(0);
  daemons::JobDescription job;
  job.program = builder.build();
  const JobId id = pool.submit(std::move(job));
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(4)));
  EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted);
  EXPECT_EQ(pool.schedd().job(id)->attempts.size(), 1u);
}

TEST(Escalation, EvictionChurnIsNotAPersistentFault) {
  // A machine that evicts after substantial progress must not drive the
  // escalation streak to give-up: progress resets it.
  PoolConfig config;
  config.seed = 3;
  config.discipline = daemons::DisciplineConfig::scoped();
  config.discipline.checkpointing = true;
  config.discipline.checkpoint_interval = SimTime::minutes(2);
  config.machines.push_back(MachineSpec::good("desk0"));
  Pool pool(config);
  jvm::ProgramBuilder builder("long");
  for (int i = 0; i < 30; ++i) builder.compute(SimTime::minutes(2));
  daemons::JobDescription job;
  job.program = builder.build();
  const JobId id = pool.submit(std::move(job));
  pool.boot();
  // The owner flaps every 10 minutes, forever.
  struct Flapper {
    Pool* pool;
    bool active = false;
    void flap() {
      active = !active;
      pool->startd("desk0")->set_owner_active(active);
      pool->engine().schedule(active ? SimTime::minutes(1)
                                     : SimTime::minutes(10),
                              [this] { flap(); });
    }
  };
  static Flapper flapper;
  flapper = Flapper{&pool};
  pool.engine().schedule(SimTime::minutes(10), [] { flapper.flap(); });
  ASSERT_TRUE(pool.run_until_done(SimTime::hours(10)));
  EXPECT_EQ(pool.schedd().job(id)->state, daemons::JobState::kCompleted)
      << pool.schedd().job(id)->final_summary.str();
}

}  // namespace
}  // namespace esg::pool
