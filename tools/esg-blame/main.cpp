// esg-blame: name the daemon at fault from two causal span journals.
//
// Three entry points:
//   --plan FILE            replay a saved esg-faultplan twice — once with
//                          the discipline forced to "scoped" (baseline),
//                          once as written (subject) — and localize the
//                          first divergent span. Federated plans
//                          (shape pools>=2) replay as federations.
//   --baseline A --subject B
//                          diff two saved esg-journal v1 files directly
//                          (healthy seed vs failing seed, 1-thread vs
//                          8-thread, yesterday vs today).
//   --crosscheck           close the static/dynamic loop: compile every
//                          confirmable esg-flow laundering finding to its
//                          witness plan, blame each plan, and require the
//                          blamed daemon to be the owner of the witness
//                          path's laundering site. Exit 0 only when every
//                          confirmed witness's blame agrees with the
//                          static analysis.
//
// Shared flags:
//   --json         print the report as deterministic JSON instead of ANSI
//   --text         print the committed-golden "# esg-blame v1" text form
//   --no-color     ANSI rendering without escape codes
//   --out FILE     also write the text-format report to FILE
//   --limit K      --crosscheck: stop after K compiled witnesses (default 4)
//
// Exit codes: 0 verdict as expected, 1 blame missing/mismatched, 2 usage
// or IO error. For --plan and journal diffing, "expected" means the
// report itself was produced — a no-divergence verdict still exits 0; it
// is a statement about the journals, not a failure of the tool.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/flow.hpp"
#include "chaos/blame.hpp"
#include "chaos/plan.hpp"
#include "chaos/witness.hpp"
#include "flock/chaos.hpp"
#include "obs/blame.hpp"
#include "obs/export.hpp"
#include "pool/topology.hpp"

using namespace esg;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --plan FILE | --baseline A --subject B | "
               "--crosscheck\n"
               "          [--json] [--text] [--no-color] [--out FILE]\n"
               "          [--limit K]\n",
               argv0);
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int emit(const obs::BlameReport& report, bool json, bool text, bool color,
         const std::string& out_path) {
  if (json) {
    std::fputs(report.json().c_str(), stdout);
  } else if (text) {
    std::fputs(report.str().c_str(), stdout);
  } else {
    std::fputs(report.ansi(color).c_str(), stdout);
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "esg-blame: cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << report.str();
  }
  return 0;
}

/// The owning daemon of a topology node name ("schedd.disposition" ->
/// "schedd") — the unit the blame report must converge on.
std::string node_owner(const std::string& node) {
  return node.substr(0, node.find('.'));
}

int crosscheck(int limit, bool color) {
  const analysis::TopologyModel model =
      pool::describe_pool_topology(daemons::DisciplineConfig::naive());
  const analysis::FlowReport flow = analysis::FlowAnalyzer().analyze(model);

  int attempted = 0;
  int agreed = 0;
  for (const analysis::FlowFinding& finding : flow.findings) {
    if (attempted >= limit) break;
    const auto witness = chaos::compile_witness(finding);
    if (!witness) continue;
    ++attempted;

    std::printf("--- crosschecking %s [%s] laundered at %s ---\n",
                finding.rule.c_str(), std::string(kind_name(finding.kind)).c_str(),
                finding.laundering_node.c_str());
    const chaos::WitnessVerdict verdict =
        chaos::confirm_witness(witness->plan);
    if (!verdict.confirmed()) {
      std::printf("  witness did not confirm dynamically — skipping blame\n");
      continue;
    }

    const obs::BlameReport report = chaos::blame_plan(witness->plan);
    if (!report.found()) {
      std::printf("  BLAME MISSING: journals did not diverge\n");
      continue;
    }
    const obs::AlignKey key = report.blamed_key();
    const std::string expected = node_owner(finding.laundering_node);
    const bool match = key.daemon == expected;
    std::printf("  blamed: %s  (static laundering site owner: %s) %s\n",
                key.str().c_str(), expected.c_str(),
                match ? "AGREE" : "DISAGREE");
    std::fputs(report.ansi(color).c_str(), stdout);
    if (match) ++agreed;
  }

  std::printf("blame agrees with static analysis on %d/%d confirmed "
              "witness(es)\n",
              agreed, attempted);
  if (attempted == 0) {
    std::fprintf(stderr, "esg-blame: nothing to crosscheck\n");
    return 1;
  }
  return agreed == attempted ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string plan_path, baseline_path, subject_path, out_path;
  bool json = false, text = false, color = true, do_crosscheck = false;
  int limit = 4;

  for (int i = 1; i < argc; ++i) {
    auto next_str = [&](std::string& out) {
      if (i + 1 < argc) out = argv[++i];
    };
    if (!std::strcmp(argv[i], "--plan")) {
      next_str(plan_path);
    } else if (!std::strcmp(argv[i], "--baseline")) {
      next_str(baseline_path);
    } else if (!std::strcmp(argv[i], "--subject")) {
      next_str(subject_path);
    } else if (!std::strcmp(argv[i], "--crosscheck")) {
      do_crosscheck = true;
    } else if (!std::strcmp(argv[i], "--limit")) {
      if (i + 1 < argc) limit = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--json")) {
      json = true;
    } else if (!std::strcmp(argv[i], "--text")) {
      text = true;
    } else if (!std::strcmp(argv[i], "--no-color")) {
      color = false;
    } else if (!std::strcmp(argv[i], "--out")) {
      next_str(out_path);
    } else {
      return usage(argv[0]);
    }
  }

  if (do_crosscheck) return crosscheck(limit, color);

  if (!plan_path.empty()) {
    const std::optional<std::string> bytes = read_file(plan_path);
    if (!bytes) {
      std::fprintf(stderr, "esg-blame: cannot read %s\n", plan_path.c_str());
      return 2;
    }
    const std::optional<chaos::FaultPlan> plan = chaos::parse_plan(*bytes);
    if (!plan) {
      std::fprintf(stderr, "esg-blame: %s is not an esg-faultplan v1 file\n",
                   plan_path.c_str());
      return 2;
    }
    const bool federated = plan->shape.pools >= 2;
    const obs::BlameReport report =
        federated ? chaos::blame_plan(*plan, flock::replay_federated)
                  : chaos::blame_plan(*plan);
    return emit(report, json, text, color, out_path);
  }

  if (!baseline_path.empty() && !subject_path.empty()) {
    const std::optional<std::string> a = read_file(baseline_path);
    const std::optional<std::string> b = read_file(subject_path);
    if (!a || !b) {
      std::fprintf(stderr, "esg-blame: cannot read %s\n",
                   (!a ? baseline_path : subject_path).c_str());
      return 2;
    }
    // Tolerant prefix parse: a journal another process is still appending
    // to (or a copy torn mid-line) diffs over its complete lines.
    const std::optional<obs::Journal> baseline = obs::parse_journal_prefix(*a);
    const std::optional<obs::Journal> subject = obs::parse_journal_prefix(*b);
    if (!baseline || !subject) {
      std::fprintf(stderr, "esg-blame: %s is not an esg-journal v1 file\n",
                   (!baseline ? baseline_path : subject_path).c_str());
      return 2;
    }
    const obs::BlameReport report = obs::blame_journals(
        *baseline, *subject, baseline_path, subject_path);
    return emit(report, json, text, color, out_path);
  }

  return usage(argv[0]);
}
