// esg-chaos: deterministic fault-injection campaigns against the pool.
//
// Three entry points:
//   --plan FILE      replay one saved esg-faultplan v1 file: rebuild the
//                    pool it names, arm the injector, run, and print the
//                    resilience-oracle verdict. Byte-identical to the CI
//                    cell that produced the file — this is the repro path.
//   --campaign N     draw N random plans from --seed, fan them out over
//                    pool::SweepRunner, judge every cell, and ddmin-shrink
//                    the first failing plan to a minimal replayable repro.
//   --score-patterns run the resilience-pattern scorecard: every catalog
//                    pattern as a pool-wide monoculture under every scope
//                    family's fault schedule, scored on survival / lies /
//                    wasted CPU / time-to-result (see chaos/score.hpp).
//                    --out FILE writes the deterministic scorecard JSON;
//                    --json prints it instead of the ANSI table; each
//                    --expect-winner FAMILY=PATTERN pins a family's
//                    winner (exit 1 on mismatch) — the CTest gate.
//
// --federated switches both paths to flock::Federation cells: plans are
// drawn by flock::make_federated_plan (remote blackout mid-negotiation,
// inter-pool trunk severance, remote exec crash under flocked work,
// parent-stream partition), cells run a whole federation (--pools wide),
// and the same five oracles judge the outcome. A saved federated plan
// (shape "pools=N") replays as a federated cell automatically.
//
// Shared flags:
//   --seed S         campaign seed (default 1)
//   --threads T      sweep width (0 = hardware); verdicts do not depend on
//                    this — that invariant is itself under test in CI
//   --discipline D   "scoped" (default) or "naive" pool under test
//   --machines N, --jobs N   pool shape (default 4 machines, 16 jobs)
//   --federated      federation cells instead of single-pool cells
//   --pools N        federation width for --federated (default 3)
//   --triage K       re-run every red cell (or cell 0 when all green) K
//                    extra times and flag verdict variance as a
//                    determinism bug ("flaky") in the report
//   --shrink         with --plan: ddmin a failing plan after replaying it
//   --no-shrink      with --campaign: skip shrinking (faster scoped gates)
//   --out FILE       write the minimized failing plan here (CI artifact)
//   --blame-out FILE write the minimized plan's blame report here; when
//                    unset it lands next to --out ("chaos-minimized.plan"
//                    -> "chaos-blame.report"), so every red campaign ships
//                    the guilty daemon alongside the repro
//   --json           machine-readable campaign result on stdout
//   --expect-fail    invert the verdict: exit 0 only if at least one plan
//                    failed AND the shrunk plan still fails on replay (the
//                    naive-pool CI gate proving the oracles bite)
//
// Exit codes: 0 expected outcome, 1 unexpected verdict, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "chaos/campaign.hpp"
#include "chaos/plan.hpp"
#include "chaos/score.hpp"
#include "flock/chaos.hpp"
#include "resilience/pattern.hpp"

using namespace esg;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--plan FILE | --campaign N | --score-patterns)\n"
               "          [--seed S] [--threads T] [--discipline scoped|naive]\n"
               "          [--machines N] [--jobs N] [--shrink | --no-shrink]\n"
               "          [--federated] [--pools N] [--triage K]\n"
               "          [--out FILE] [--blame-out FILE] [--json]\n"
               "          [--expect-fail] [--expect-winner FAMILY=PATTERN]...\n",
               argv0);
  return 2;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "esg-chaos: cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

int run_plan(const std::string& path, bool do_shrink, const std::string& out_path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "esg-chaos: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::optional<chaos::FaultPlan> plan = chaos::parse_plan(buf.str());
  if (!plan) {
    std::fprintf(stderr, "esg-chaos: %s is not an esg-faultplan v1 file\n",
                 path.c_str());
    return 2;
  }

  const bool federated = plan->shape.pools >= 2;
  std::printf("replaying %s (%zu action(s), seed %llu, %s %s)\n",
              path.c_str(), plan->actions.size(),
              static_cast<unsigned long long>(plan->seed),
              plan->shape.discipline.c_str(),
              federated ? "federation" : "pool");
  const chaos::RunResult run = federated
                                   ? flock::replay_federated(*plan)
                                   : chaos::CampaignRunner::replay(*plan);
  std::fputs(run.report.str().c_str(), stdout);
  std::printf("oracles: %s\n", run.oracles.str().c_str());

  if (do_shrink && !run.ok()) {
    std::size_t probes = 0;
    const chaos::FaultPlan minimized =
        federated ? chaos::CampaignRunner::shrink_with(
                        *plan, flock::replay_federated, &probes)
                  : chaos::CampaignRunner::shrink(*plan, &probes);
    std::printf("minimized to %zu action(s) in %zu probe(s):\n%s",
                minimized.actions.size(), probes, minimized.str().c_str());
    if (!out_path.empty() && !write_file(out_path, minimized.str())) return 2;
  }
  return run.ok() ? 0 : 1;
}

int run_score(const chaos::ScoreOptions& options, bool json,
              const std::string& out_path,
              const std::vector<std::pair<std::string, std::string>>& expected) {
  // Validate the pins before spending minutes of simulation on a typo.
  const std::vector<std::string> known = chaos::score_family_names();
  for (const auto& [family, pattern] : expected) {
    if (std::find(known.begin(), known.end(), family) == known.end()) {
      std::fprintf(stderr, "esg-chaos: unknown scope family \"%s\"\n",
                   family.c_str());
      return 2;
    }
    if (!resilience::parse_pattern(pattern)) {
      std::fprintf(stderr, "esg-chaos: unknown pattern \"%s\"\n",
                   pattern.c_str());
      return 2;
    }
  }

  const chaos::Scorecard card = chaos::score_patterns(options);
  std::fputs(json ? card.json().c_str() : card.table().c_str(), stdout);
  if (!out_path.empty() && !write_file(out_path, card.json())) return 2;

  int mismatches = 0;
  for (const auto& [family, pattern] : expected) {
    const chaos::FamilyScore* score = card.family(family);
    if (score == nullptr || score->winner != pattern) {
      std::fprintf(stderr,
                   "esg-chaos: expected %s to be won by %s, but %s won\n",
                   family.c_str(), pattern.c_str(),
                   score != nullptr ? score->winner.c_str() : "(missing)");
      ++mismatches;
    }
  }
  return mismatches == 0 ? 0 : 1;
}

/// Where the blame report lands when --blame-out is not given: next to the
/// minimized plan, "<prefix>minimized.plan" -> "<prefix>blame.report".
std::string derive_blame_path(const std::string& out_path) {
  static constexpr std::string_view kPlanSuffix = "minimized.plan";
  if (out_path.size() >= kPlanSuffix.size() &&
      out_path.ends_with(kPlanSuffix)) {
    return out_path.substr(0, out_path.size() - kPlanSuffix.size()) +
           "blame.report";
  }
  return out_path + ".blame.report";
}

int run_campaign(const chaos::CampaignOptions& options, bool federated,
                 bool json, bool expect_fail, const std::string& out_path,
                 const std::string& blame_out) {
  const chaos::CampaignResult result =
      federated ? flock::run_federated_campaign(options)
                : chaos::CampaignRunner(options).run();
  std::fputs(json ? result.json().c_str() : result.str().c_str(), stdout);

  if (result.minimized.has_value() && !out_path.empty() &&
      !write_file(out_path, result.minimized->str())) {
    return 2;
  }
  if (result.blame.has_value()) {
    const std::string blame_path =
        !blame_out.empty()
            ? blame_out
            : (!out_path.empty() ? derive_blame_path(out_path)
                                 : std::string());
    if (!blame_path.empty() &&
        !write_file(blame_path, result.blame->str())) {
      return 2;
    }
  }
  if (expect_fail) {
    // The gate that proves the oracles can fail: some plan must have gone
    // red, and the shrunk artifact must still reproduce the failure.
    const bool bites = result.failing > 0 &&
                       result.minimized.has_value() &&
                       !result.minimized_oracles.ok();
    if (!bites) {
      std::fprintf(stderr,
                   "esg-chaos: --expect-fail, but no reproducible oracle "
                   "failure was found\n");
    }
    return bites ? 0 : 1;
  }
  return result.all_ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string plan_path;
  std::string out_path;
  std::string blame_out;
  chaos::CampaignOptions options;
  bool have_campaign = false;
  bool score_patterns = false;
  std::vector<std::pair<std::string, std::string>> expect_winners;
  bool federated = false;
  bool plan_shrink = false;
  bool json = false;
  bool expect_fail = false;

  for (int i = 1; i < argc; ++i) {
    auto next_str = [&](std::string& out) {
      if (i + 1 < argc) out = argv[++i];
    };
    auto next_int = [&](int& out) {
      if (i + 1 < argc) out = std::atoi(argv[++i]);
    };
    if (!std::strcmp(argv[i], "--plan")) {
      next_str(plan_path);
    } else if (!std::strcmp(argv[i], "--campaign")) {
      have_campaign = true;
      next_int(options.plans);
    } else if (!std::strcmp(argv[i], "--seed")) {
      int s = 1;
      next_int(s);
      options.seed = static_cast<std::uint64_t>(s);
    } else if (!std::strcmp(argv[i], "--threads")) {
      int t = 0;
      next_int(t);
      options.threads = t > 0 ? static_cast<unsigned>(t) : 0;
    } else if (!std::strcmp(argv[i], "--discipline")) {
      next_str(options.shape.discipline);
    } else if (!std::strcmp(argv[i], "--machines")) {
      next_int(options.shape.machines);
    } else if (!std::strcmp(argv[i], "--jobs")) {
      next_int(options.shape.jobs);
    } else if (!std::strcmp(argv[i], "--federated")) {
      federated = true;
    } else if (!std::strcmp(argv[i], "--pools")) {
      next_int(options.shape.pools);
      if (options.shape.pools < 2) options.shape.pools = 2;
    } else if (!std::strcmp(argv[i], "--triage")) {
      next_int(options.triage_reruns);
    } else if (!std::strcmp(argv[i], "--shrink")) {
      plan_shrink = true;
    } else if (!std::strcmp(argv[i], "--no-shrink")) {
      options.shrink = false;
    } else if (!std::strcmp(argv[i], "--out")) {
      next_str(out_path);
    } else if (!std::strcmp(argv[i], "--blame-out")) {
      next_str(blame_out);
    } else if (!std::strcmp(argv[i], "--json")) {
      json = true;
    } else if (!std::strcmp(argv[i], "--expect-fail")) {
      expect_fail = true;
    } else if (!std::strcmp(argv[i], "--score-patterns")) {
      score_patterns = true;
    } else if (!std::strcmp(argv[i], "--expect-winner")) {
      std::string pin;
      next_str(pin);
      const std::size_t eq = pin.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == pin.size()) {
        return usage(argv[0]);
      }
      expect_winners.emplace_back(pin.substr(0, eq), pin.substr(eq + 1));
    } else {
      return usage(argv[0]);
    }
  }

  if (score_patterns) {
    chaos::ScoreOptions score_options;
    score_options.seed = options.seed;
    score_options.threads = options.threads;
    return run_score(score_options, json, out_path, expect_winners);
  }

  if (!plan_path.empty()) return run_plan(plan_path, plan_shrink, out_path);
  if (have_campaign) {
    if (options.shape.discipline != "scoped" &&
        options.shape.discipline != "naive") {
      return usage(argv[0]);
    }
    if (options.plans <= 0) return usage(argv[0]);
    if (federated && options.shape.pools < 2) options.shape.pools = 3;
    return run_campaign(options, federated, json, expect_fail, out_path,
                        blame_out);
  }
  return usage(argv[0]);
}
