// esg-flow CLI: path-sensitive error-flow analysis with replayable
// witnesses.
//
//   esg-flow [--discipline scoped|naive] [--federated] [--sarif <out.json>]
//            [--unregister <scope>] [--expect-findings <n>] [--dump]
//            [--confirm] [--confirm-limit <k>] [--witness-out <plan-file>]
//   esg-flow --confirm-plan <plan-file>
//
// Builds the declared pool topology (the same describe_topology() hooks
// esg-verify consumes), runs the FlowAnalyzer's worklist fixpoint, prints
// every path-sensitive finding with its witness path, and exits 1 when any
// finding survives — `esg-flow --discipline scoped` is the flow-clean CI
// gate, `esg-flow --discipline naive --expect-findings N` the pinned
// naive-defect gate.
//
// --confirm closes the static/dynamic loop: each kind-bearing laundering
// finding is compiled (chaos::compile_witness) to a minimal esg-faultplan
// and replayed under BOTH disciplines; a finding is confirmed when the
// naive replay fails at least one resilience oracle while the scoped
// replay of the same plan comes back green. Exit 0 when at least one
// finding confirms. --confirm-plan replays an existing plan artifact (for
// example the chaos campaign's shrunk repro) through the same two-leg
// cross-check.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/flow.hpp"
#include "analysis/sarif.hpp"
#include "chaos/witness.hpp"
#include "core/scope.hpp"
#include "pool/topology.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: esg-flow [--discipline scoped|naive] [--federated]\n"
         "                [--sarif <out.json>] [--unregister <scope>]\n"
         "                [--expect-findings <n>] [--dump]\n"
         "                [--confirm] [--confirm-limit <k>]\n"
         "                [--witness-out <plan-file>]\n"
         "       esg-flow --confirm-plan <plan-file>\n";
  return 2;
}

const char* rule_description(const std::string& rule) {
  if (rule == "esf/multi-hop-laundering") {
    return "an error's scope provenance must survive to the terminal "
           "boundary, however many hops it takes";
  }
  if (rule == "esf/dead-handler") {
    return "a registered handler some obligation actually routes to";
  }
  if (rule == "esf/unreachable-escalation") {
    return "an escalation rung some obligation can actually reach";
  }
  if (rule == "esf/redundant-consumption") {
    return "consumption vocabulary must be deliverable by some declared "
           "detection";
  }
  if (rule == "esf/masking-cycle") {
    return "flow edges must not form rings that re-wrap errors forever";
  }
  if (rule == "esf/dangling-edge") {
    return "flow edges must name declared detection points or interfaces";
  }
  return "path-sensitive error-flow defect";
}

int confirm_plan_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "esg-flow: cannot read " << path << "\n";
    return 2;
  }
  std::ostringstream os;
  os << in.rdbuf();
  const auto plan = esg::chaos::parse_plan(os.str());
  if (!plan) {
    std::cerr << "esg-flow: " << path << " is not an esg-faultplan\n";
    return 2;
  }
  std::cout << "confirming " << path << " under both disciplines...\n";
  const esg::chaos::WitnessVerdict verdict =
      esg::chaos::confirm_witness(*plan);
  std::cout << verdict.str() << "\n";
  return verdict.confirmed() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string discipline_name = "scoped";
  std::string sarif_path;
  std::string unregister_name;
  std::string witness_out;
  std::optional<std::size_t> expect_findings;
  bool federated = false;
  bool dump = false;
  bool confirm = false;
  int confirm_limit = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--discipline") {
      if (i + 1 >= argc) return usage();
      discipline_name = argv[++i];
    } else if (arg == "--federated") {
      federated = true;
    } else if (arg == "--sarif") {
      if (i + 1 >= argc) return usage();
      sarif_path = argv[++i];
    } else if (arg == "--unregister") {
      if (i + 1 >= argc) return usage();
      unregister_name = argv[++i];
    } else if (arg == "--expect-findings") {
      if (i + 1 >= argc) return usage();
      expect_findings = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--confirm") {
      confirm = true;
    } else if (arg == "--confirm-limit") {
      if (i + 1 >= argc) return usage();
      confirm_limit = std::stoi(argv[++i]);
    } else if (arg == "--witness-out") {
      if (i + 1 >= argc) return usage();
      witness_out = argv[++i];
    } else if (arg == "--confirm-plan") {
      if (i + 1 >= argc) return usage();
      return confirm_plan_file(argv[i + 1]);
    } else {
      return usage();
    }
  }

  esg::daemons::DisciplineConfig discipline;
  if (discipline_name == "scoped") {
    discipline = esg::daemons::DisciplineConfig::scoped();
  } else if (discipline_name == "naive") {
    discipline = esg::daemons::DisciplineConfig::naive();
  } else {
    return usage();
  }

  esg::analysis::TopologyModel model =
      federated ? esg::pool::describe_federated_topology(discipline)
                : esg::pool::describe_pool_topology(discipline);
  if (!unregister_name.empty()) {
    const auto scope = esg::parse_scope(unregister_name);
    if (!scope) {
      std::cerr << "esg-flow: unknown scope: " << unregister_name << "\n";
      return 2;
    }
    model.unregister(*scope);
  }
  if (dump) std::cout << model.str();

  const esg::analysis::FlowReport report =
      esg::analysis::FlowAnalyzer().analyze(model);
  std::cout << "discipline: " << discipline_name
            << (federated ? " (federated)" : "") << "\n"
            << report.str() << "\n";

  if (!sarif_path.empty()) {
    esg::analysis::sarif::Log log("esg-flow", "1.0");
    for (const esg::analysis::FlowFinding& f : report.findings) {
      log.add_rule({f.rule, rule_description(f.rule)});
      esg::analysis::sarif::Result r;
      r.rule_id = f.rule;
      r.message = f.message;
      r.logical = f.witness;
      r.logical.insert(r.logical.begin(), "component:" + f.component);
      log.add_result(std::move(r));
    }
    std::ofstream out(sarif_path);
    if (!out) {
      std::cerr << "esg-flow: cannot write " << sarif_path << "\n";
      return 2;
    }
    out << log.str();
  }

  if (confirm) {
    int attempted = 0;
    int confirmed = 0;
    for (const esg::analysis::FlowFinding& f : report.findings) {
      if (attempted >= confirm_limit) break;
      const auto witness = esg::chaos::compile_witness(f);
      if (!witness) continue;
      ++attempted;
      std::cout << "\n--- confirming " << f.rule << " ["
                << esg::kind_name(f.kind) << "] ---\n"
                << witness->rationale << "\n";
      const esg::chaos::WitnessVerdict verdict =
          esg::chaos::confirm_witness(witness->plan);
      std::cout << verdict.str() << "\n";
      if (verdict.confirmed()) {
        ++confirmed;
        if (!witness_out.empty()) {
          std::ofstream out(witness_out);
          if (!out) {
            std::cerr << "esg-flow: cannot write " << witness_out << "\n";
            return 2;
          }
          out << witness->plan.str();
          witness_out.clear();  // keep the first confirmed witness
        }
      }
    }
    std::cout << "\nconfirmed " << confirmed << "/" << attempted
              << " compiled witness(es)\n";
    if (attempted == 0) {
      std::cerr << "esg-flow: nothing to confirm (no compilable findings)\n";
      return 1;
    }
    return confirmed > 0 ? 0 : 1;
  }

  if (expect_findings) {
    if (report.findings.size() != *expect_findings) {
      std::cerr << "esg-flow: expected " << *expect_findings
                << " finding(s), got " << report.findings.size() << "\n";
      return 1;
    }
    return 0;
  }
  return report.ok() ? 0 : 1;
}
