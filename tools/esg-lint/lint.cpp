#include "lint.hpp"

#include <algorithm>
#include <cctype>

#include "analysis/sarif.hpp"

namespace esg::lint {

namespace {

struct Token {
  std::string text;
  int line = 0;
};

using Suppressions = std::map<int, std::set<std::string>>;

bool is_identifier(const std::string& s) {
  return !s.empty() &&
         (std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_');
}

bool is_string_literal(const std::string& s) {
  return s.size() >= 2 && s.front() == '"' && s.back() == '"';
}

std::string unquote(const std::string& s) {
  return s.substr(1, s.size() - 2);
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void note_suppressions(const std::string& comment, int line,
                       Suppressions& out) {
  static const std::string kTag = "esg-lint: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(kTag, pos)) != std::string::npos) {
    pos += kTag.size();
    const std::size_t end = comment.find(')', pos);
    if (end == std::string::npos) break;
    std::string name = comment.substr(pos, end - pos);
    // Rule ids carry the "lint/" family prefix; a bare allow(<rule>) means
    // the same thing.
    if (name.find('/') == std::string::npos) name = "lint/" + name;
    out[line].insert(std::move(name));
    pos = end;
  }
}

/// Comments are consumed here. String and char literals become single
/// tokens that keep their text (quotes included): they can never collide
/// with an identifier or operator check, and the dangling-flow rule needs
/// the node names inside them.
std::vector<Token> tokenize(const std::string& text,
                            Suppressions* suppressions) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  auto two = [&](std::size_t j) {
    return j + 1 < n ? text.substr(j, 2) : std::string();
  };
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (two(i) == "//") {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      if (suppressions) {
        note_suppressions(text.substr(i, end - i), line, *suppressions);
      }
      i = end;
      continue;
    }
    if (two(i) == "/*") {
      const std::size_t end = text.find("*/", i + 2);
      const std::size_t stop = end == std::string::npos ? n : end + 2;
      const std::string body = text.substr(i, stop - i);
      if (suppressions) note_suppressions(body, line, *suppressions);
      line += static_cast<int>(std::count(body.begin(), body.end(), '\n'));
      i = stop;
      continue;
    }
    if (c == '"' || c == '\'') {
      const int start_line = line;
      std::size_t j = i + 1;
      while (j < n && text[j] != c) {
        if (text[j] == '\\' && j + 1 < n) ++j;
        if (text[j] == '\n') ++line;
        ++j;
      }
      const std::size_t stop = j < n ? j + 1 : n;
      tokens.push_back({text.substr(i, stop - i), start_line});
      i = stop;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '_')) {
        ++j;
      }
      tokens.push_back({text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '.' || text[j] == '\'')) {
        ++j;
      }
      tokens.push_back({text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Two-char operators are kept whole so `=` below always means plain
    // assignment and `::` / `->` can be matched as single tokens.
    static const char* kTwoChar[] = {"::", "->", "==", "!=", "<=", ">=",
                                     "+=", "-=", "*=", "/=", "%=", "|=",
                                     "&=", "^=", "&&", "||", "++", "--",
                                     "<<", ">>"};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (two(i) == op) {
        tokens.push_back({op, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    tokens.push_back({std::string(1, c), line});
    ++i;
  }
  return tokens;
}

/// Index of the token closing the bracket opened at `open`, or size().
std::size_t match_forward(const std::vector<Token>& t, std::size_t open,
                          const std::string& open_text,
                          const std::string& close_text) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == open_text) {
      ++depth;
    } else if (t[i].text == close_text) {
      if (--depth == 0) return i;
    }
  }
  return t.size();
}

/// End of a template argument list whose `<` is at `open`; `>>` closes two
/// levels. Bails (returns size()) if the construct turns out not to be a
/// template.
std::size_t template_end(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "<") {
      ++depth;
    } else if (s == ">") {
      if (--depth == 0) return i;
    } else if (s == ">>") {
      depth -= 2;
      if (depth <= 0) return i;
    } else if (s == ";" || s == "{") {
      return t.size();
    }
  }
  return t.size();
}

const std::set<std::string>& statement_keywords() {
  static const std::set<std::string> kKeywords = {
      "if",      "else",      "for",       "while",     "do",
      "switch",  "case",      "return",    "break",     "continue",
      "goto",    "new",       "delete",    "using",     "namespace",
      "template", "public",   "private",   "protected", "co_return",
      "co_await", "co_yield", "throw",     "default",   "sizeof",
      "static_assert", "typedef"};
  return kKeywords;
}

}  // namespace

std::string Finding::str() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

void Linter::scan(const std::string& path, const std::string& text) {
  (void)path;
  const std::vector<Token> tokens = tokenize(text, nullptr);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    // Vocabulary: enum class ErrorKind / ErrorScope / Disposition { ... }.
    if (tokens[i].text == "enum" && i + 2 < tokens.size() &&
        tokens[i + 1].text == "class") {
      const std::string& name = tokens[i + 2].text;
      if (name != "ErrorKind" && name != "ErrorScope" &&
          name != "Disposition") {
        continue;
      }
      std::size_t j = i + 3;
      while (j < tokens.size() && tokens[j].text != "{" &&
             tokens[j].text != ";") {
        ++j;
      }
      if (j >= tokens.size() || tokens[j].text != "{") continue;
      const std::size_t end = match_forward(tokens, j, "{", "}");
      std::vector<std::string> enumerators;
      for (std::size_t k = j + 1; k < end && k < tokens.size(); ++k) {
        if ((tokens[k - 1].text == "{" || tokens[k - 1].text == ",") &&
            is_identifier(tokens[k].text)) {
          enumerators.push_back(tokens[k].text);
        }
      }
      if (!enumerators.empty()) enums_[name] = std::move(enumerators);
      continue;
    }
    // Result<...> name( ... declares a Result-returning function.
    if (tokens[i].text == "Result" && i + 1 < tokens.size() &&
        tokens[i + 1].text == "<") {
      const std::size_t close = template_end(tokens, i + 1);
      if (close >= tokens.size()) continue;
      std::string last;
      std::size_t j = close + 1;
      while (j < tokens.size() &&
             (is_identifier(tokens[j].text) || tokens[j].text == "::")) {
        if (is_identifier(tokens[j].text)) last = tokens[j].text;
        ++j;
      }
      if (!last.empty() && j < tokens.size() && tokens[j].text == "(") {
        result_functions_.insert(last);
      }
      continue;
    }
    // A function declared with a *non*-Result return type under the same
    // name makes the name ambiguous for the token-level discard rule:
    // `void fail(...)` next to `Result<Response> fail(...)`.
    if (i >= 1 && i + 1 < tokens.size() && is_identifier(tokens[i].text) &&
        tokens[i + 1].text == "(" && is_identifier(tokens[i - 1].text) &&
        statement_keywords().count(tokens[i - 1].text) == 0 &&
        tokens[i - 1].text != "Result") {
      ambiguous_names_.insert(tokens[i].text);
    }
    // Topology node names — what describe_topology() hooks may wire flow
    // edges to. Three declaration idioms carry them as literals:
    //   (a) `.point = "x"` / `.routine = "x"` member assignments,
    //   (b) the brace-init literals of a declare_detection(...) call (the
    //       component name rides along; learning it too only widens the
    //       accepted set, never hides a typo'd edge between real nodes),
    //   (c) the first literal of an ErrorInterface constructor — the
    //       runtime contracts the jvm layer re-declares via routine().
    if ((tokens[i].text == "point" || tokens[i].text == "routine") &&
        i >= 1 && tokens[i - 1].text == "." && i + 2 < tokens.size() &&
        tokens[i + 1].text == "=" && is_string_literal(tokens[i + 2].text)) {
      topology_nodes_.insert(unquote(tokens[i + 2].text));
      continue;
    }
    if (tokens[i].text == "declare_detection" && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      const std::size_t close = match_forward(tokens, i + 1, "(", ")");
      for (std::size_t k = i + 2; k < close && k < tokens.size(); ++k) {
        if (is_string_literal(tokens[k].text)) {
          topology_nodes_.insert(unquote(tokens[k].text));
        }
      }
      continue;
    }
    if (tokens[i].text == "ErrorInterface") {
      std::size_t j = i + 1;
      while (j < tokens.size() && is_identifier(tokens[j].text)) ++j;
      if (j < tokens.size() && tokens[j].text == "(") {
        const std::size_t close = match_forward(tokens, j, "(", ")");
        for (std::size_t k = j + 1; k < close && k < tokens.size(); ++k) {
          if (is_string_literal(tokens[k].text)) {
            topology_nodes_.insert(unquote(tokens[k].text));
            break;
          }
        }
      }
      continue;
    }
    // ErrorScope::kX used as a value (not a case label, not router
    // bookkeeping) is evidence the scope can actually be raised.
    if (tokens[i].text == "ErrorScope" && i + 2 < tokens.size() &&
        tokens[i + 1].text == "::") {
      if (i > 0 && tokens[i - 1].text == "case") continue;
      if (i >= 2 && tokens[i - 1].text == "(" &&
          (tokens[i - 2].text == "register_handler" ||
           tokens[i - 2].text == "unregister")) {
        continue;
      }
      raised_scopes_.insert(tokens[i + 2].text);
    }
  }
}

void Linter::lint(const std::string& path, const std::string& text) {
  Suppressions suppressions;
  const std::vector<Token> tokens = tokenize(text, &suppressions);

  auto suppressed = [&](const std::string& rule, int line) {
    for (const int l : {line, line - 1}) {
      auto it = suppressions.find(l);
      if (it != suppressions.end() && it->second.count(rule) != 0) return true;
    }
    return false;
  };
  auto add = [&](std::string rule, int line, std::string message) {
    if (suppressed(rule, line)) return;
    findings_.push_back(
        Finding{std::move(rule), path, line, std::move(message)});
  };

  // ---- lint/exhaustive-switch ----------------------------------------------
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].text != "switch") continue;
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
    const std::size_t close = match_forward(tokens, i + 1, "(", ")");
    if (close + 1 >= tokens.size() || tokens[close + 1].text != "{") continue;
    const std::size_t body_end = match_forward(tokens, close + 1, "{", "}");

    std::map<std::string, std::set<std::string>> seen;
    int default_line = 0;
    for (std::size_t k = close + 2; k < body_end && k < tokens.size(); ++k) {
      // A nested switch gets its own visit from the outer loop.
      if (tokens[k].text == "switch" && k + 1 < body_end &&
          tokens[k + 1].text == "(") {
        const std::size_t inner = match_forward(tokens, k + 1, "(", ")");
        if (inner + 1 < body_end && tokens[inner + 1].text == "{") {
          k = match_forward(tokens, inner + 1, "{", "}");
        }
        continue;
      }
      if (tokens[k].text == "case" && k + 3 < body_end &&
          tokens[k + 2].text == "::" && enums_.count(tokens[k + 1].text) != 0) {
        seen[tokens[k + 1].text].insert(tokens[k + 3].text);
      }
      if (tokens[k].text == "default" && k + 1 < body_end &&
          tokens[k + 1].text == ":") {
        default_line = tokens[k].line;
      }
    }
    if (seen.empty()) continue;  // not a switch over a scoped-error enum

    const auto& [enum_name, labels] = *seen.begin();
    if (default_line != 0) {
      add("lint/exhaustive-switch", default_line,
          "switch over " + enum_name +
              " has a default label; list every enumerator so a new kind "
              "cannot be silently absorbed");
      continue;
    }
    std::vector<std::string> missing;
    for (const std::string& e : enums_.at(enum_name)) {
      if (labels.count(e) == 0) missing.push_back(e);
    }
    if (!missing.empty()) {
      std::string list;
      for (std::size_t m = 0; m < missing.size() && m < 5; ++m) {
        if (m != 0) list += ", ";
        list += missing[m];
      }
      if (missing.size() > 5) list += ", ...";
      add("lint/exhaustive-switch", tokens[i].line,
          "switch over " + enum_name + " is missing " +
              std::to_string(missing.size()) + " enumerator(s): " + list);
    }
  }

  // ---- lint/discarded-result -----------------------------------------------
  std::size_t start = 0;
  int paren_depth = 0;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& s = tokens[i].text;
    if (s == "(") ++paren_depth;
    if (s == ")" && paren_depth > 0) --paren_depth;
    if (s != ";" && s != "{" && s != "}") continue;
    // A ';' inside parentheses (a for-loop header) ends nothing.
    if (s == ";" && paren_depth > 0) continue;
    if (s == "{" || s == "}") paren_depth = 0;
    const std::size_t first = start;
    start = i + 1;
    if (s != ";" || i < 2 || tokens[i - 1].text != ")") continue;
    if (first >= i || !is_identifier(tokens[first].text)) continue;
    if (statement_keywords().count(tokens[first].text) != 0) continue;
    // Any plain assignment in the statement means the value is consumed.
    bool assigned = false;
    int depth = 0;
    for (std::size_t k = first; k < i; ++k) {
      const std::string& t = tokens[k].text;
      if (t == "(" || t == "[") ++depth;
      if (t == ")" || t == "]") --depth;
      if (t == "=" && depth == 0) {
        assigned = true;
        break;
      }
    }
    if (assigned) continue;
    // The callee of the statement's final call.
    int close_depth = 0;
    std::size_t open = i;  // will land on the '(' matching tokens[i-1]
    for (std::size_t k = i - 1; k > first; --k) {
      if (tokens[k].text == ")") ++close_depth;
      if (tokens[k].text == "(") {
        if (--close_depth == 0) {
          open = k;
          break;
        }
      }
    }
    if (open == i || open == first) continue;
    const std::string& callee = tokens[open - 1].text;
    // Only genuine call syntax: the callee sits at the statement start or
    // behind ./->/:: — a name behind a type or a '>' is a declaration.
    const bool call_context =
        open - 1 == first ||
        (open >= 2 && (tokens[open - 2].text == "." ||
                       tokens[open - 2].text == "->" ||
                       tokens[open - 2].text == "::"));
    if (!call_context) continue;
    if (is_identifier(callee) && result_functions_.count(callee) != 0 &&
        ambiguous_names_.count(callee) == 0) {
      add("lint/discarded-result", tokens[open - 1].line,
          "call to '" + callee +
              "' discards its Result — an explicit error silently becomes "
              "no error; assign it or cast to (void) deliberately");
    }
  }

  // ---- lint/naked-throw ----------------------------------------------------
  if (!ends_with(path, "core/escape.hpp")) {
    for (const Token& t : tokens) {
      if (t.text == "throw") {
        add("lint/naked-throw", t.line,
            "`throw` outside core/escape.hpp — escaping (Principle 2) is "
            "the only sanctioned nonlocal exit");
      }
    }
  }

  // ---- lint/global-singleton -----------------------------------------------
  // The process-wide accessors survive only as compat shims for unbound
  // callers; everything inside a simulation reaches these organs through
  // its engine's SimContext. The file defining a shim is exempt (it must
  // name itself); any other use needs an explicit allow marker.
  struct Shim {
    const char* cls;
    const char* method;
    const char* defining_file;
  };
  static const Shim kShims[] = {
      {"LogSink", "instance", "common/log.cpp"},
      {"FlightRecorder", "global", "obs/trace.cpp"},
      {"PrincipleAudit", "global", "core/audit.cpp"},
  };
  for (const Shim& shim : kShims) {
    if (ends_with(path, shim.defining_file)) continue;
    for (std::size_t i = 0; i + 3 < tokens.size(); ++i) {
      if (tokens[i].text != shim.cls || tokens[i + 1].text != "::" ||
          tokens[i + 2].text != shim.method || tokens[i + 3].text != "(") {
        continue;
      }
      add("lint/global-singleton", tokens[i].line,
          std::string(shim.cls) + "::" + shim.method +
              "() is a deprecated compat shim — bind through "
              "sim::SimContext instead so concurrent engines stay isolated");
    }
  }

  // ---- lint/dangling-flow --------------------------------------------------
  // TopologyModel::declare_flow keeps whatever names it is handed;
  // resolution happens later, and an edge naming nothing is simply absent
  // from everything the verifiers prove. Flag literal endpoints that match
  // no node learned across the scanned corpus. Computed endpoints (e.g.
  // `contract->routine()`) are beyond a token-level pass and are skipped.
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].text != "declare_flow" || tokens[i + 1].text != "(") {
      continue;
    }
    const std::size_t close = match_forward(tokens, i + 1, "(", ")");
    for (std::size_t k = i + 2; k < close && k < tokens.size(); ++k) {
      if (!is_string_literal(tokens[k].text)) continue;
      const std::string node = unquote(tokens[k].text);
      if (topology_nodes_.count(node) != 0) continue;
      add("lint/dangling-flow", tokens[k].line,
          "flow endpoint \"" + node +
              "\" names no declared detection point or interface — the "
              "edge silently vanishes from the verified topology");
    }
  }

  // ---- lint/naked-retry ----------------------------------------------------
  // A for/while header that *counts* an attempt/retry variable is a
  // hand-rolled recovery loop: its budget and backoff live outside the
  // Strategy catalog, invisible to the policy table and the scorecards.
  // Range-fors over attempt *records* have no counting operator and pass.
  // src/resilience/ is the catalog itself — the one sanctioned home for
  // attempt counting.
  const auto retryish = [](const std::string& s) {
    if (!is_identifier(s)) return false;
    std::string lower;
    lower.reserve(s.size());
    for (const char c : s) {
      lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    return lower.find("attempt") != std::string::npos ||
           lower.find("retry") != std::string::npos ||
           lower.find("retries") != std::string::npos;
  };
  if (path.find("resilience/") == std::string::npos) {
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      const bool is_for = tokens[i].text == "for";
      const bool is_while = tokens[i].text == "while";
      if ((!is_for && !is_while) || tokens[i + 1].text != "(") continue;
      const std::size_t close = match_forward(tokens, i + 1, "(", ")");
      std::string counter;
      for (std::size_t k = i + 2; k < close && k < tokens.size(); ++k) {
        const std::string& t = tokens[k].text;
        if (is_for) {
          // `++attempt`, `attempt++`, or `attempt +=` in the header.
          if ((t == "++" || t == "--" || t == "+=") && k + 1 < close &&
              retryish(tokens[k + 1].text)) {
            counter = tokens[k + 1].text;
            break;
          }
          if (retryish(t) && k + 1 < close &&
              (tokens[k + 1].text == "++" || tokens[k + 1].text == "--" ||
               tokens[k + 1].text == "+=")) {
            counter = t;
            break;
          }
        } else {
          // `while (attempts < budget)` — the counter bumps in the body.
          if (retryish(t) && k + 1 < close &&
              (tokens[k + 1].text == "<" || tokens[k + 1].text == "<=" ||
               tokens[k + 1].text == ">" || tokens[k + 1].text == ">=")) {
            counter = t;
            break;
          }
        }
      }
      if (counter.empty()) continue;
      add("lint/naked-retry", tokens[i].line,
          "loop counts '" + counter +
              "' by hand — recovery belongs to a resilience::Strategy "
              "consulted through the PolicyTable (resilience/strategy.hpp); "
              "a redraw/re-measure loop takes esg-lint: allow(naked-retry)");
    }
  }

  // ---- lint/unraised-scope -------------------------------------------------
  for (std::size_t i = 0; i + 4 < tokens.size(); ++i) {
    if (tokens[i].text != "register_handler") continue;
    if (tokens[i + 1].text != "(" || tokens[i + 2].text != "ErrorScope" ||
        tokens[i + 3].text != "::") {
      continue;
    }
    const std::string& scope = tokens[i + 4].text;
    if (raised_scopes_.count(scope) == 0) {
      add("lint/unraised-scope", tokens[i].line,
          "handler registered for ErrorScope::" + scope +
              " but nothing in the scanned sources raises that scope");
    }
  }
}

std::string to_sarif(const std::vector<Finding>& findings) {
  analysis::sarif::Log log("esg-lint", "1.0");
  log.add_rule({"lint/exhaustive-switch",
                "switches over error enums list every enumerator, no default"});
  log.add_rule({"lint/discarded-result",
                "Result<T> return values must not be dropped on the floor"});
  log.add_rule({"lint/naked-throw",
                "throw outside core/escape.hpp; escaping is the only "
                "sanctioned nonlocal exit"});
  log.add_rule({"lint/unraised-scope",
                "registered handler scopes must be raisable somewhere"});
  log.add_rule({"lint/global-singleton",
                "deprecated process-wide singletons; bind through "
                "sim::SimContext"});
  log.add_rule({"lint/dangling-flow",
                "declare_flow endpoints must name a declared detection "
                "point or interface"});
  log.add_rule({"lint/naked-retry",
                "retry loops belong to the resilience Strategy catalog, "
                "not hand-rolled attempt counters"});
  for (const Finding& f : findings) {
    analysis::sarif::Result r;
    r.rule_id = f.rule;
    r.message = f.message;
    r.uri = f.file;
    r.line = f.line;
    log.add_result(std::move(r));
  }
  return log.str();
}

}  // namespace esg::lint
