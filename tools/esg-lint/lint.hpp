// esg-lint: a token-level discipline pass over the C++ sources.
//
// The static verifier (src/analysis) proves the principles over the
// *declared* topology; this linter enforces the source habits that keep
// the declarations and the code from drifting apart:
//
//   lint/exhaustive-switch  A switch over ErrorKind, ErrorScope, or
//                           Disposition must list every enumerator and
//                           carry no default label: adding a kind must
//                           force every dispatch site to choose (P4's
//                           finite vocabulary, enforced at use sites).
//   lint/discarded-result   A statement-level call to a function returning
//                           Result<T> whose value is dropped on the floor
//                           (an explicit error silently becoming no error).
//   lint/naked-throw        A `throw` outside core/escape.hpp: escaping is
//                           the only sanctioned nonlocal exit (P2).
//   lint/unraised-scope     register_handler(ErrorScope::kX) with no
//                           evidence anywhere in the corpus that the scope
//                           is raised: a handler listening on a frequency
//                           nobody transmits on.
//   lint/global-singleton   A call to LogSink::instance(),
//                           FlightRecorder::global(), or
//                           PrincipleAudit::global() outside the file that
//                           defines the shim. The singletons survive only
//                           for compatibility; simulation code binds
//                           through sim::SimContext so concurrent engines
//                           stay isolated.
//   lint/dangling-flow      declare_flow("from", "to") whose literal
//                           endpoint names no declared detection point or
//                           interface routine anywhere in the corpus.
//                           TopologyModel drops unresolvable edges, so a
//                           typo'd name silently vanishes from everything
//                           esg-verify and esg-flow prove.
//   lint/naked-retry        A hand-rolled retry loop — a for/while header
//                           counting an attempt/retry variable — outside
//                           src/resilience/. Recovery policy belongs to a
//                           resilience::Strategy consulted through the
//                           PolicyTable, so budgets, backoff, and scoring
//                           stay in one place; a loop that re-draws or
//                           re-measures (not re-recovers) takes an allow
//                           marker.
//
// A finding can be suppressed with a comment on the same or the preceding
// line:  // esg-lint: allow(<rule>)
//
// The enum vocabularies and the Result-returning function set are parsed
// out of the scanned sources themselves, so the linter follows the headers
// without a hand-maintained list. Run scan() over every file first, then
// lint() each file.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace esg::lint {

struct Finding {
  std::string rule;
  std::string file;
  int line = 0;
  std::string message;

  [[nodiscard]] std::string str() const;
};

class Linter {
 public:
  /// Pass A: learn enum vocabularies, Result-returning function names, and
  /// raised-scope evidence from one file. Call for every file first.
  void scan(const std::string& path, const std::string& text);

  /// Pass B: lint one file against everything scan() learned.
  void lint(const std::string& path, const std::string& text);

  [[nodiscard]] const std::vector<Finding>& findings() const {
    return findings_;
  }
  [[nodiscard]] const std::map<std::string, std::vector<std::string>>& enums()
      const {
    return enums_;
  }
  [[nodiscard]] const std::set<std::string>& result_functions() const {
    return result_functions_;
  }
  [[nodiscard]] const std::set<std::string>& topology_nodes() const {
    return topology_nodes_;
  }

 private:
  std::map<std::string, std::vector<std::string>> enums_;
  std::set<std::string> result_functions_;
  /// Names also declared with a non-Result return type somewhere: too
  /// ambiguous for the name-based discard rule.
  std::set<std::string> ambiguous_names_;
  std::set<std::string> raised_scopes_;
  /// Topology node names: detection points and interface routines learned
  /// from the describe_topology() declaration idioms.
  std::set<std::string> topology_nodes_;
  std::vector<Finding> findings_;
};

/// Render findings as SARIF 2.1.0 (same structural shape as the verifier's
/// output, so CI uploads both as one artifact family).
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace esg::lint
