// esg-lint CLI: lint C++ sources for error-discipline violations.
//
//   esg-lint [--sarif <out.json>] <file-or-directory>...
//
// Directories are walked recursively for .hpp/.cpp files. All files are
// scanned first (building the enum vocabulary and the Result-returning
// function set), then linted. Exit status 1 when any finding survives
// suppressions, 2 on usage/IO errors.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

int usage() {
  std::cerr << "usage: esg-lint [--sarif <out.json>] <file-or-dir>...\n";
  return 2;
}

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

}  // namespace

int main(int argc, char** argv) {
  std::string sarif_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sarif") {
      if (i + 1 >= argc) return usage();
      sarif_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage();

  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (std::filesystem::is_directory(root, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
    } else if (std::filesystem::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::cerr << "esg-lint: no such file or directory: " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<std::pair<std::string, std::string>> contents;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "esg-lint: cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream body;
    body << in.rdbuf();
    contents.emplace_back(file, body.str());
  }

  esg::lint::Linter linter;
  for (const auto& [file, text] : contents) linter.scan(file, text);
  for (const auto& [file, text] : contents) linter.lint(file, text);

  for (const esg::lint::Finding& f : linter.findings()) {
    std::cout << f.str() << "\n";
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path);
    if (!out) {
      std::cerr << "esg-lint: cannot write " << sarif_path << "\n";
      return 2;
    }
    out << esg::lint::to_sarif(linter.findings());
  }
  std::cout << "esg-lint: " << contents.size() << " file(s), "
            << linter.findings().size() << " finding(s)\n";
  return linter.findings().empty() ? 0 : 1;
}
