// esg-top: a refreshing per-scope / per-machine error-flow dashboard.
//
// Three data sources:
//   --journal FILE   post-hoc: aggregate a saved esg-journal v1 file
//                    (obs::journal_str wrote it; see also --journal-out)
//   --follow FILE    live tail: re-read FILE as another process appends to
//                    it and redraw each frame. A torn trailing line (a
//                    write caught mid-flight) is tolerated and picked up
//                    on the next frame (obs::parse_journal_prefix).
//   --demo MODE      live: run the black-hole example pool (MODE is
//                    "naive" or "scoped") and redraw the dashboard as the
//                    simulation advances
//   --parent MODE    federated: run a flocking federation (--pools pools,
//                    all jobs submitted at "home" so they overflow) with
//                    netdata-style streaming on, then render the parent
//                    aggregator's dashboard — per-pool provenance (chunks,
//                    dedup, events, last seq) plus each child's table and
//                    the merged cross-pool view
//   --blame FILE     render a saved esg-blame report (the chaos campaign's
//                    chaos-blame.report artifact, or esg-blame --out): the
//                    verdict header, a sparkline of the causal chain over
//                    simulated time, and the chain itself, root first
//
// Modes and outputs:
//   --once           render a single frame and exit (CI smoke tests)
//   --interval MS    wall-clock delay between --follow frames (default 500)
//   --frames N       stop --follow after N frames (0 = forever; CI smokes
//                    use a small N so the tail terminates)
//   --json           emit the deterministic JSON dashboard dump instead of
//                    the ANSI table
//   --journal-out F  after a demo run, save its journal to F (this is how
//                    tools/esg-top/demo.journal was generated)
//   --slice SEC      aggregation slice width in simulated seconds
//   --seed S, --jobs N, --bad N, --good N   demo pool shape
//
// Plain ANSI only (clear + home between frames), no curses.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "flock/chaos.hpp"
#include "flock/federation.hpp"
#include "obs/blame.hpp"
#include "obs/dashboard.hpp"
#include "obs/export.hpp"
#include "pool/pool.hpp"
#include "pool/workload.hpp"

using namespace esg;

namespace {

int usage(const char* argv0) {
  std::printf(
      "usage: %s (--journal FILE | --follow FILE | --demo naive|scoped\n"
      "           | --parent naive|scoped | --blame FILE)\n"
      "          [--once] [--json] [--journal-out FILE] [--slice SEC]\n"
      "          [--interval MS] [--frames N] [--pools N]\n"
      "          [--seed S] [--jobs N] [--bad N] [--good N]\n",
      argv0);
  return 2;
}

void clear_screen() { std::fputs("\x1b[H\x1b[2J", stdout); }

int render(const obs::FlowAggregate& aggregate, const std::string& title,
           bool json, bool color) {
  if (json) {
    std::fputs(obs::dashboard_json(aggregate, title).c_str(), stdout);
  } else {
    obs::DashboardOptions options;
    options.title = title;
    options.color = color;
    std::fputs(obs::render_dashboard(aggregate, options).c_str(), stdout);
  }
  return 0;
}

int run_journal(const std::string& path, SimTime slice, bool json) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "esg-top: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::optional<obs::Journal> journal = obs::parse_journal(buf.str());
  if (!journal) {
    std::fprintf(stderr, "esg-top: %s is not an esg-journal v1 file\n",
                 path.c_str());
    return 1;
  }
  obs::ScopeAggregator aggregator(slice);
  aggregator.observe_all(journal->events);
  obs::FlowAggregate aggregate = aggregator.snapshot();
  aggregate.dropped_spans = journal->dropped;
  return render(aggregate, path, json, /*color=*/false);
}

int run_blame(const std::string& path, SimTime slice, bool json) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "esg-top: cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::optional<obs::BlameReport> report =
      obs::parse_blame_report(buf.str());
  if (!report) {
    std::fprintf(stderr, "esg-top: %s is not an esg-blame v1 report\n",
                 path.c_str());
    return 1;
  }
  if (json) {
    std::fputs(report->json().c_str(), stdout);
    return 0;
  }
  // The causal chain as a time-sliced sparkline, in the same glyph style
  // as the dashboard's per-kind rows: where in the run the error's journey
  // happened, at a glance, before the chain itself.
  if (!report->chain.empty()) {
    obs::FlowSeries series;
    for (const obs::TraceEvent& event : report->chain) {
      ++series.total;
      ++series.slices[event.when.as_usec() / slice.as_usec()];
    }
    std::printf("%s  chain |%s| %zu span(s)\n", path.c_str(),
                obs::sparkline(series).c_str(), report->chain.size());
  } else {
    std::printf("%s\n", path.c_str());
  }
  std::fputs(report->ansi(/*color=*/true).c_str(), stdout);
  return 0;
}

int run_follow(const std::string& path, SimTime slice, bool json,
               int interval_ms, int frames) {
  int rendered = 0;
  while (true) {
    // Re-read the whole file each frame: journals are small, and a full
    // re-parse sidesteps every torn-write and truncate-restart corner.
    std::string text;
    {
      std::ifstream in(path, std::ios::binary);
      if (in) {
        std::ostringstream buf;
        buf << in.rdbuf();
        text = buf.str();
      }
    }
    std::optional<obs::Journal> journal = obs::parse_journal_prefix(text);
    if (!json) clear_screen();
    if (journal) {
      obs::ScopeAggregator aggregator(slice);
      aggregator.observe_all(journal->events);
      obs::FlowAggregate aggregate = aggregator.snapshot();
      aggregate.dropped_spans = journal->dropped;
      render(aggregate, path + " (following)", json, /*color=*/!json);
    } else {
      // Not there yet, or the header hasn't landed: keep waiting rather
      // than erroring — the writer may only just have opened the file.
      std::printf("esg-top: waiting for %s ...\n", path.c_str());
    }
    ++rendered;
    if (frames > 0 && rendered >= frames) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

struct DemoOptions {
  std::string mode = "scoped";
  std::uint64_t seed = 42;
  int jobs = 40;
  int bad = 2;
  int good = 6;
};

int run_demo(const DemoOptions& demo, SimTime slice, bool once, bool json,
             const std::string& journal_out) {
  pool::PoolConfig config;
  config.seed = demo.seed;
  config.discipline = demo.mode == "naive"
                          ? daemons::DisciplineConfig::naive()
                          : daemons::DisciplineConfig::scoped();
  config.trace = true;
  config.dashboard_slice = slice;
  for (int i = 0; i < demo.bad; ++i) {
    config.machines.push_back(
        pool::MachineSpec::misconfigured_java("bad" + std::to_string(i)));
  }
  for (int i = 0; i < demo.good; ++i) {
    config.machines.push_back(
        pool::MachineSpec::good("good" + std::to_string(i)));
  }

  pool::Pool pool(config);
  Rng rng(demo.seed);
  pool::WorkloadOptions workload;
  workload.count = demo.jobs;
  workload.mean_compute = SimTime::sec(30);
  for (auto& job : pool::make_workload(workload, rng)) {
    pool.submit(std::move(job));
  }

  const std::string title =
      demo.mode + " pool, seed " + std::to_string(demo.seed);
  if (once) {
    pool.run_until_done(SimTime::hours(8));
  } else {
    // Step the simulation one dashboard slice at a time and redraw, so the
    // flow counters visibly accumulate. Wall pacing is cosmetic.
    pool.boot();
    SimTime horizon = pool.engine().now();
    const SimTime limit = pool.engine().now() + SimTime::hours(8);
    while (horizon < limit) {
      horizon += slice;
      while (pool.engine().step(horizon)) {
      }
      clear_screen();
      render(pool.flow(), title + " @ " + horizon.str(), /*json=*/false,
             /*color=*/true);
      std::this_thread::sleep_for(std::chrono::milliseconds(120));
      if (pool.engine().pending() == 0) break;
    }
  }

  if (!journal_out.empty()) {
    std::ofstream out(journal_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "esg-top: cannot write %s\n", journal_out.c_str());
      return 1;
    }
    out << obs::journal_str(pool.recorder());
  }
  return render(pool.flow(), title, json, /*color=*/!once && !json);
}

int run_parent(const DemoOptions& demo, int pools, SimTime slice, bool json,
               const std::string& journal_out) {
  flock::FederationConfig config;
  config.seed = demo.seed;
  config.discipline = demo.mode == "naive"
                          ? daemons::DisciplineConfig::naive()
                          : daemons::DisciplineConfig::scoped();
  if (demo.mode != "naive") config.discipline.schedd_avoidance = true;
  config.trace = true;
  config.stream = true;
  config.dashboard_slice = slice;
  // Home is starved (one machine) so the workload overflows through
  // flocking; every remote pool contributes two good machines.
  for (int i = 0; i < pools; ++i) {
    flock::PoolSpec spec;
    spec.name = flock::federated_pool_name(i);
    const int machines = i == 0 ? 1 : 2;
    for (int m = 0; m < machines; ++m) {
      spec.machines.push_back(
          pool::MachineSpec::good("exec" + std::to_string(m)));
    }
    config.pools.push_back(std::move(spec));
  }

  flock::Federation federation(std::move(config));
  federation.boot();
  pool::stage_workload_inputs(*federation.submit_fs("home"));
  pool::WorkloadOptions workload;
  workload.count = demo.jobs;
  workload.mean_compute = SimTime::sec(30);
  workload.remote_io_fraction = 0.25;
  Rng rng(demo.seed);
  for (auto& job : pool::make_workload(workload, rng)) {
    federation.submit(0, std::move(job));
  }
  federation.run_until_done(SimTime::hours(4));

  if (!journal_out.empty()) {
    std::ofstream out(journal_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "esg-top: cannot write %s\n", journal_out.c_str());
      return 1;
    }
    out << obs::journal_str(federation.recorder());
  }

  const std::string title = demo.mode + " federation, " +
                            std::to_string(pools) + " pools, seed " +
                            std::to_string(demo.seed);
  if (json) {
    std::fputs(federation.federated_dashboard_json(title).c_str(), stdout);
    return 0;
  }
  obs::DashboardOptions options;
  options.title = title;
  options.color = false;
  std::fputs(federation.parent()->dashboard_str(options).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal_path;
  std::string blame_path;
  std::string follow_path;
  std::string journal_out;
  DemoOptions demo;
  bool have_demo = false;
  bool have_parent = false;
  int pools = 3;
  bool once = false;
  bool json = false;
  std::int64_t slice_sec = 60;
  int interval_ms = 500;
  int frames = 0;

  for (int i = 1; i < argc; ++i) {
    auto next_str = [&](std::string& out) {
      if (i + 1 < argc) out = argv[++i];
    };
    auto next_int = [&](int& out) {
      if (i + 1 < argc) out = std::atoi(argv[++i]);
    };
    if (!std::strcmp(argv[i], "--journal")) {
      next_str(journal_path);
    } else if (!std::strcmp(argv[i], "--blame")) {
      next_str(blame_path);
    } else if (!std::strcmp(argv[i], "--follow")) {
      next_str(follow_path);
    } else if (!std::strcmp(argv[i], "--interval")) {
      int ms = 500;
      next_int(ms);
      if (ms > 0) interval_ms = ms;
    } else if (!std::strcmp(argv[i], "--frames")) {
      next_int(frames);
    } else if (!std::strcmp(argv[i], "--demo")) {
      have_demo = true;
      next_str(demo.mode);
    } else if (!std::strcmp(argv[i], "--parent")) {
      have_parent = true;
      next_str(demo.mode);
    } else if (!std::strcmp(argv[i], "--pools")) {
      next_int(pools);
      if (pools < 2) pools = 2;
    } else if (!std::strcmp(argv[i], "--journal-out")) {
      next_str(journal_out);
    } else if (!std::strcmp(argv[i], "--once")) {
      once = true;
    } else if (!std::strcmp(argv[i], "--json")) {
      json = true;
    } else if (!std::strcmp(argv[i], "--slice")) {
      int s = 60;
      next_int(s);
      if (s > 0) slice_sec = s;
    } else if (!std::strcmp(argv[i], "--seed")) {
      int s = 42;
      next_int(s);
      demo.seed = static_cast<std::uint64_t>(s);
    } else if (!std::strcmp(argv[i], "--jobs")) {
      next_int(demo.jobs);
    } else if (!std::strcmp(argv[i], "--bad")) {
      next_int(demo.bad);
    } else if (!std::strcmp(argv[i], "--good")) {
      next_int(demo.good);
    } else {
      return usage(argv[0]);
    }
  }

  const SimTime slice = SimTime::sec(slice_sec);
  if (!journal_path.empty()) return run_journal(journal_path, slice, json);
  if (!blame_path.empty()) return run_blame(blame_path, slice, json);
  if (!follow_path.empty()) {
    return run_follow(follow_path, slice, json, interval_ms, frames);
  }
  if (have_demo) {
    if (demo.mode != "naive" && demo.mode != "scoped") return usage(argv[0]);
    return run_demo(demo, slice, once, json, journal_out);
  }
  if (have_parent) {
    if (demo.mode != "naive" && demo.mode != "scoped") return usage(argv[0]);
    return run_parent(demo, pools, slice, json, journal_out);
  }
  return usage(argv[0]);
}
