// esg-verify CLI: static whole-pool verification of the four principles.
//
//   esg-verify [--discipline scoped|naive] [--federated] [--sarif <out.json>]
//              [--unregister <scope>] [--expect-findings <n>] [--dump]
//   esg-verify --diff <dump-a> <dump-b>
//
// Builds the declared pool topology for the discipline (the same
// describe_topology() hooks the daemons export), runs the ScopeVerifier,
// prints the report, and exits 1 when any finding survives — so a CTest /
// CI gate is just `esg-verify --discipline scoped`.
//
// --federated verifies the cross-pool model instead
// (describe_federated_topology: the flock layer's cluster/network-scope
// contract at the pool boundary).
//
// --diff reads two TopologyModel dumps (saved with --dump) and prints the
// declaration-level diff — what one topology declares that the other does
// not. Exits 0 when identical, 1 otherwise, so it doubles as a contract
// drift gate.
//
// --unregister opens a routing window first (the static twin of a manager
// daemon going away), e.g. `--unregister pool` reproduces the seeded P3
// hole from the paper's restarted-schedd discussion.
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/diff.hpp"
#include "analysis/sarif.hpp"
#include "analysis/verify.hpp"
#include "core/scope.hpp"
#include "pool/topology.hpp"

namespace {

int usage() {
  std::cerr << "usage: esg-verify [--discipline scoped|naive] [--federated]"
               " [--sarif <out.json>] [--unregister <scope>]"
               " [--expect-findings <n>] [--dump]\n"
               "       esg-verify --diff <dump-a> <dump-b>\n";
  return 2;
}

int run_diff(const std::string& path_a, const std::string& path_b) {
  const auto slurp = [](const std::string& path,
                        std::string& out) -> bool {
    std::ifstream in(path);
    if (!in) return false;
    std::ostringstream os;
    os << in.rdbuf();
    out = os.str();
    return true;
  };
  std::string a, b;
  if (!slurp(path_a, a)) {
    std::cerr << "esg-verify: cannot read " << path_a << "\n";
    return 2;
  }
  if (!slurp(path_b, b)) {
    std::cerr << "esg-verify: cannot read " << path_b << "\n";
    return 2;
  }
  const esg::analysis::TopologyDiff diff =
      esg::analysis::diff_topology_dumps(a, b);
  std::cout << diff.str();
  return diff.identical() ? 0 : 1;
}

const char* rule_description(const std::string& rule) {
  if (rule == "esv/p1-laundering") {
    return "explicit errors must not become implicit at a boundary (P1)";
  }
  if (rule == "esv/p2-escape-gap") {
    return "non-contractual kinds need an escaping conversion on every "
           "path (P2)";
  }
  if (rule == "esv/p3-routing-hole") {
    return "every raisable scope needs a handler at or above it (P3)";
  }
  if (rule == "esv/p4-catch-all" || rule == "esv/p4-budget") {
    return "error interfaces must be concise and finite (P4)";
  }
  return "error-scope principle violation";
}

}  // namespace

int main(int argc, char** argv) {
  std::string discipline_name = "scoped";
  std::string sarif_path;
  std::string unregister_name;
  std::optional<std::size_t> expect_findings;
  bool dump = false;
  bool federated = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--diff") {
      if (i + 2 >= argc) return usage();
      return run_diff(argv[i + 1], argv[i + 2]);
    } else if (arg == "--discipline") {
      if (i + 1 >= argc) return usage();
      discipline_name = argv[++i];
    } else if (arg == "--federated") {
      federated = true;
    } else if (arg == "--sarif") {
      if (i + 1 >= argc) return usage();
      sarif_path = argv[++i];
    } else if (arg == "--unregister") {
      if (i + 1 >= argc) return usage();
      unregister_name = argv[++i];
    } else if (arg == "--expect-findings") {
      if (i + 1 >= argc) return usage();
      expect_findings = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--dump") {
      dump = true;
    } else {
      return usage();
    }
  }

  esg::daemons::DisciplineConfig discipline;
  if (discipline_name == "scoped") {
    discipline = esg::daemons::DisciplineConfig::scoped();
  } else if (discipline_name == "naive") {
    discipline = esg::daemons::DisciplineConfig::naive();
  } else {
    return usage();
  }

  esg::analysis::TopologyModel model =
      federated ? esg::pool::describe_federated_topology(discipline)
                : esg::pool::describe_pool_topology(discipline);
  if (!unregister_name.empty()) {
    const auto scope = esg::parse_scope(unregister_name);
    if (!scope) {
      std::cerr << "esg-verify: unknown scope: " << unregister_name << "\n";
      return 2;
    }
    model.unregister(*scope);
  }
  if (dump) std::cout << model.str();

  const esg::analysis::AnalysisReport report =
      esg::analysis::ScopeVerifier().verify(model);
  std::cout << "discipline: " << discipline_name
            << (federated ? " (federated)" : "") << "\n"
            << report.str();

  if (!sarif_path.empty()) {
    esg::analysis::sarif::Log log("esg-verify", "1.0");
    for (const esg::analysis::Finding& f : report.findings) {
      log.add_rule({f.rule, rule_description(f.rule)});
      esg::analysis::sarif::Result r;
      r.rule_id = f.rule;
      r.message = f.message;
      r.logical = f.chain;
      r.logical.insert(r.logical.begin(), "component:" + f.component);
      log.add_result(std::move(r));
    }
    std::ofstream out(sarif_path);
    if (!out) {
      std::cerr << "esg-verify: cannot write " << sarif_path << "\n";
      return 2;
    }
    out << log.str();
  }
  if (expect_findings) {
    // Pinned-count gate: the naive topology must keep yielding exactly the
    // defects the analyzer is known to find — fewer means a check went
    // dark, more means the model drifted.
    if (report.findings.size() != *expect_findings) {
      std::cerr << "esg-verify: expected " << *expect_findings
                << " finding(s), got " << report.findings.size() << "\n";
      return 1;
    }
    return 0;
  }
  return report.ok() ? 0 : 1;
}
